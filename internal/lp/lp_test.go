package lp

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func almostEq(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (tol %g)", name, got, want, tol)
	}
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6  →  min −x−y.
	// Optimum at intersection: x = 8/5, y = 6/5, objective −14/5.
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, 2}, LE, 4)
	p.AddConstraint([]float64{3, 1}, LE, 6)
	sol := mustSolve(t, p)
	almostEq(t, "objective", sol.Objective, -14.0/5, 1e-9)
	almostEq(t, "x", sol.X[0], 8.0/5, 1e-9)
	almostEq(t, "y", sol.X[1], 6.0/5, 1e-9)
}

func TestEqualityConstraint(t *testing.T) {
	// min x+2y s.t. x+y = 3 → x = 3, y = 0, objective 3.
	p := NewProblem(2)
	p.C = []float64{1, 2}
	p.AddConstraint([]float64{1, 1}, EQ, 3)
	sol := mustSolve(t, p)
	almostEq(t, "objective", sol.Objective, 3, 1e-9)
	almostEq(t, "x", sol.X[0], 3, 1e-9)
}

func TestGEConstraint(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 4, x ≤ 1 → x = 1, y = 3, objective 11.
	p := NewProblem(2)
	p.C = []float64{2, 3}
	p.AddConstraint([]float64{1, 1}, GE, 4)
	p.AddConstraint([]float64{1, 0}, LE, 1)
	sol := mustSolve(t, p)
	almostEq(t, "objective", sol.Objective, 11, 1e-9)
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −2 (i.e. x ≥ 2) → x = 2.
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]float64{-1}, LE, -2)
	sol := mustSolve(t, p)
	almostEq(t, "x", sol.X[0], 2, 1e-9)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.C = []float64{1}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	if _, err := p.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x s.t. y ≤ 1: x can grow without bound.
	p := NewProblem(2)
	p.C = []float64{-1, 0}
	p.AddConstraint([]float64{0, 1}, LE, 1)
	if _, err := p.Solve(Options{}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{1, 0}
	sol := mustSolve(t, p)
	almostEq(t, "objective", sol.Objective, 0, 0)

	p.C = []float64{-1, 0}
	if _, err := p.Solve(Options{}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestBadShapes(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]float64{1}, LE, 1)
	if _, err := p.Solve(Options{}); err == nil {
		t.Fatal("Solve accepted mismatched constraint width")
	}
	q := NewProblem(1)
	q.Cons = append(q.Cons, Constraint{Coeffs: []float64{1}, Kind: 0, RHS: 1})
	if _, err := q.Solve(Options{}); err == nil {
		t.Fatal("Solve accepted invalid constraint kind")
	}
}

func TestDegenerate(t *testing.T) {
	// A classic degenerate LP (multiple constraints active at the optimum).
	// min −x−y s.t. x ≤ 1, y ≤ 1, x+y ≤ 2 → objective −2.
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	sol := mustSolve(t, p)
	almostEq(t, "objective", sol.Objective, -2, 1e-9)
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, 2}, LE, 4)
	p.AddConstraint([]float64{3, 1}, LE, 6)
	if _, err := p.Solve(Options{MaxIter: 1}); !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
}

func TestKindString(t *testing.T) {
	if LE.String() != "≤" || EQ.String() != "=" || GE.String() != "≥" {
		t.Fatal("ConstraintKind.String mismatch")
	}
	if got := ConstraintKind(9).String(); got != "ConstraintKind(9)" {
		t.Fatalf("String = %q", got)
	}
}

func TestDualsKnownLP(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6 → min −x−y.
	// Optimal duals of the min problem: y = A^{-T} c_B over the active rows:
	// solve {y1+3y2 = −1, 2y1+y2 = −1} → y1 = −2/5, y2 = −1/5.
	p := NewProblem(2)
	p.C = []float64{-1, -1}
	p.AddConstraint([]float64{1, 2}, LE, 4)
	p.AddConstraint([]float64{3, 1}, LE, 6)
	sol := mustSolve(t, p)
	almostEq(t, "dual1", sol.Duals[0], -2.0/5, 1e-9)
	almostEq(t, "dual2", sol.Duals[1], -1.0/5, 1e-9)
	// Strong duality: b·y = objective.
	almostEq(t, "strong duality", 4*sol.Duals[0]+6*sol.Duals[1], sol.Objective, 1e-9)
}

func TestDualsSignsAndStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 5))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.IntN(3)
		p := NewProblem(n)
		for j := range p.C {
			p.C[j] = rng.Float64()*4 - 2
		}
		m := 1 + rng.IntN(3)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 2
			}
			p.AddConstraint(row, LE, rng.Float64()*5+0.5)
		}
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		p.AddConstraint(box, LE, 10)

		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var by float64
		for i, c := range p.Cons {
			// Minimisation with ≤ rows: shadow prices are ≤ 0.
			if sol.Duals[i] > 1e-7 {
				t.Fatalf("trial %d: LE dual %g > 0", trial, sol.Duals[i])
			}
			by += sol.Duals[i] * c.RHS
			// Complementary slackness: slack row ⇒ zero dual.
			var dot float64
			for j := 0; j < n; j++ {
				dot += c.Coeffs[j] * sol.X[j]
			}
			if c.RHS-dot > 1e-6 && math.Abs(sol.Duals[i]) > 1e-6 {
				t.Fatalf("trial %d: row %d slack %g but dual %g", trial, i, c.RHS-dot, sol.Duals[i])
			}
		}
		if math.Abs(by-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: strong duality violated: b·y = %g, obj = %g", trial, by, sol.Objective)
		}
	}
}

func TestDualsEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y = 3 → x = 3, dual of the equality is 2
	// (raising the RHS by 1 forces one more unit of the cheaper variable).
	p := NewProblem(2)
	p.C = []float64{2, 3}
	p.AddConstraint([]float64{1, 1}, EQ, 3)
	sol := mustSolve(t, p)
	almostEq(t, "eq dual", sol.Duals[0], 2, 1e-9)

	// min 2x s.t. x ≥ 4: dual (shadow price) is +2.
	q := NewProblem(1)
	q.C = []float64{2}
	q.AddConstraint([]float64{1}, GE, 4)
	sol = mustSolve(t, q)
	almostEq(t, "ge dual", sol.Duals[0], 2, 1e-9)
}

// --- brute-force cross-validation -----------------------------------------

// gaussSolve solves a square system in-place, returning false if singular.
func gaussSolve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Partial pivoting.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-9 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = b[i] / a[i][i]
	}
	return x, true
}

// bruteForceLP solves min c·x, Ax ≤ b, x ≥ 0 by enumerating all vertices of
// the polytope {Ax ≤ b, x ≥ 0}: every subset of n constraints (from the m
// rows plus the n non-negativity bounds) that intersects in a single point.
// Exponential; for tiny test problems only.
func bruteForceLP(c []float64, a [][]float64, b []float64) (float64, bool) {
	n := len(c)
	m := len(a)
	total := m + n
	best := math.Inf(1)
	found := false

	idx := make([]int, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			// Build and solve the active system.
			sys := make([][]float64, n)
			rhs := make([]float64, n)
			for i, ci := range idx {
				sys[i] = make([]float64, n)
				if ci < m {
					copy(sys[i], a[ci])
					rhs[i] = b[ci]
				} else {
					sys[i][ci-m] = 1
					rhs[i] = 0
				}
			}
			x, ok := gaussSolve(sys, rhs)
			if !ok {
				return
			}
			// Check feasibility.
			for _, v := range x {
				if v < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				var dot float64
				for j := 0; j < n; j++ {
					dot += a[i][j] * x[j]
				}
				if dot > b[i]+1e-7 {
					return
				}
			}
			var obj float64
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		for i := start; i < total; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, found
}

// TestRandomAgainstBruteForce cross-checks the simplex against vertex
// enumeration on random bounded LPs.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.IntN(3) // 2..4 variables
		m := 1 + rng.IntN(4) // 1..4 rows
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() * 2 // non-negative rows keep it bounded-ish
			}
			b[i] = rng.Float64()*5 + 0.5
		}
		// Add a box row to guarantee boundedness.
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		a = append(a, box)
		b = append(b, 10)
		m++

		want, ok := bruteForceLP(c, a, b)
		if !ok {
			t.Fatalf("trial %d: brute force found no vertex", trial)
		}

		p := NewProblem(n)
		p.C = c
		for i := 0; i < m; i++ {
			p.AddConstraint(a[i], LE, b[i])
		}
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %g, brute force %g", trial, sol.Objective, want)
		}
		// The returned point must be feasible and consistent with Objective.
		var obj float64
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-9 {
				t.Fatalf("trial %d: negative coordinate %g", trial, sol.X[j])
			}
			obj += c[j] * sol.X[j]
		}
		if math.Abs(obj-sol.Objective) > 1e-6*(1+math.Abs(obj)) {
			t.Fatalf("trial %d: X inconsistent with Objective: %g vs %g", trial, obj, sol.Objective)
		}
		for i := 0; i < m; i++ {
			var dot float64
			for j := 0; j < n; j++ {
				dot += a[i][j] * sol.X[j]
			}
			if dot > b[i]+1e-7 {
				t.Fatalf("trial %d: row %d violated: %g > %g", trial, i, dot, b[i])
			}
		}
	}
}

// TestRandomWithEqualities exercises phase one with equality rows.
func TestRandomWithEqualities(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 40; trial++ {
		n := 3
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*2 - 1
		}
		// One equality through a random feasible point plus a box.
		x0 := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		eq := []float64{rng.Float64() + 0.1, rng.Float64() + 0.1, rng.Float64() + 0.1}
		rhs := eq[0]*x0[0] + eq[1]*x0[1] + eq[2]*x0[2]

		p := NewProblem(n)
		p.C = c
		p.AddConstraint(eq, EQ, rhs)
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddConstraint(row, LE, 2)
		}
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		got := eq[0]*sol.X[0] + eq[1]*sol.X[1] + eq[2]*sol.X[2]
		if math.Abs(got-rhs) > 1e-6 {
			t.Fatalf("trial %d: equality violated: %g vs %g", trial, got, rhs)
		}
	}
}
