package caching

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"edgecache/internal/workload"
)

// TestWorkspaceMatchesSolveAll drives a bound workspace through a sequence
// of reward updates — the shape of a primal-dual run — and checks every
// iteration reproduces the per-call SolveAll path exactly: identical
// placements and identical objective, including across graph reuse.
func TestWorkspaceMatchesSolveAll(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.N = 3
	cfg.T = 5
	cfg.K = 7
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ws := NewWorkspace()
	ws.Bind(in)
	rng := rand.New(rand.NewPCG(7, 11))
	rewards := make([][][]float64, in.T)
	for tt := range rewards {
		rewards[tt] = make([][]float64, in.N)
		for n := range rewards[tt] {
			rewards[tt][n] = make([]float64, in.K)
		}
	}
	for iter := 0; iter < 8; iter++ {
		for tt := range rewards {
			for n := range rewards[tt] {
				for k := range rewards[tt][n] {
					rewards[tt][n][k] = rng.Float64() * 40
				}
			}
		}
		wantPlans, wantObj, err := SolveAll(context.Background(), in, rewards)
		if err != nil {
			t.Fatal(err)
		}
		gotPlans, gotObj, err := ws.SolveAll(context.Background(), rewards)
		if err != nil {
			t.Fatal(err)
		}
		if gotObj != wantObj {
			t.Fatalf("iter %d: workspace objective %v, per-call %v", iter, gotObj, wantObj)
		}
		if len(gotPlans) != len(wantPlans) {
			t.Fatalf("iter %d: %d plans, want %d", iter, len(gotPlans), len(wantPlans))
		}
		for tt := range wantPlans {
			if !reflect.DeepEqual(gotPlans[tt], wantPlans[tt]) {
				t.Fatalf("iter %d slot %d: workspace plan diverges:\n got %v\nwant %v",
					iter, tt, gotPlans[tt], wantPlans[tt])
			}
		}
	}

	// Rebinding to a differently-shaped instance must resize cleanly.
	cfg.T = 3
	cfg.K = 5
	in2, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws.Bind(in2)
	rewards2 := make([][][]float64, in2.T)
	for tt := range rewards2 {
		rewards2[tt] = make([][]float64, in2.N)
		for n := range rewards2[tt] {
			rewards2[tt][n] = make([]float64, in2.K)
			for k := range rewards2[tt][n] {
				rewards2[tt][n][k] = rng.Float64() * 40
			}
		}
	}
	wantPlans, wantObj, err := SolveAll(context.Background(), in2, rewards2)
	if err != nil {
		t.Fatal(err)
	}
	gotPlans, gotObj, err := ws.SolveAll(context.Background(), rewards2)
	if err != nil {
		t.Fatal(err)
	}
	if gotObj != wantObj || !reflect.DeepEqual(gotPlans, wantPlans) {
		t.Fatalf("after rebind: workspace diverges from per-call path")
	}
}

// TestWorkspaceIncrementalMatchesBaseline drives the delta-aware
// SolveAllRows path through a dual-iteration-shaped sequence of partial
// reward updates and checks it reproduces the per-call SolveAll baseline
// exactly — identical placements, bit-identical objective — including
// full-SBS skips (no reward row moved) and the incremental Resolve path
// (some rows moved). The all-clean round additionally asserts via the
// flow-solver stats that no solver work happened at all.
func TestWorkspaceIncrementalMatchesBaseline(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.N = 3
	cfg.T = 5
	cfg.K = 7
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ws := NewWorkspace()
	ws.Bind(in)
	rng := rand.New(rand.NewPCG(19, 5))
	rewards := make([][][]float64, in.T)
	dirty := make([][]bool, in.T)
	for tt := range rewards {
		rewards[tt] = make([][]float64, in.N)
		dirty[tt] = make([]bool, in.N)
		for n := range rewards[tt] {
			rewards[tt][n] = make([]float64, in.K)
		}
	}
	check := func(iter int) {
		t.Helper()
		wantPlans, wantObj, err := SolveAll(context.Background(), in, rewards)
		if err != nil {
			t.Fatal(err)
		}
		gotPlans, gotObj, err := ws.SolveAllRows(context.Background(), rewards, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if gotObj != wantObj {
			t.Fatalf("iter %d: incremental objective %v, baseline %v", iter, gotObj, wantObj)
		}
		for tt := range wantPlans {
			if !reflect.DeepEqual(gotPlans[tt], wantPlans[tt]) {
				t.Fatalf("iter %d slot %d: incremental plan diverges:\n got %v\nwant %v",
					iter, tt, gotPlans[tt], wantPlans[tt])
			}
		}
	}
	for iter := 0; iter < 12; iter++ {
		for tt := range rewards {
			for n := range rewards[tt] {
				if iter == 0 {
					dirty[tt][n] = true
				} else {
					// Sparse updates: most rows stay put, like late dual
					// iterations where μ has largely converged.
					dirty[tt][n] = rng.Float64() < 0.3
				}
				if !dirty[tt][n] {
					continue
				}
				for k := range rewards[tt][n] {
					rewards[tt][n][k] = rng.Float64() * 40
				}
			}
		}
		check(iter)
	}

	// All-clean round: every SBS must be skipped without touching its
	// flow network.
	for tt := range dirty {
		for n := range dirty[tt] {
			dirty[tt][n] = false
		}
	}
	before := ws.FlowStats()
	check(12)
	if after := ws.FlowStats(); after != before {
		t.Fatalf("all-clean round ran solver work: %+v -> %+v", before, after)
	}

	// Rebinding the same instance must keep the graphs (cross-window
	// reuse) and still match the baseline on the next full solve.
	g0 := ws.nets[0].g
	ws.Bind(in)
	if ws.nets[0].g != g0 {
		t.Fatal("rebinding an identical instance rebuilt the flow network")
	}
	for tt := range dirty {
		for n := range dirty[tt] {
			dirty[tt][n] = true
			for k := range rewards[tt][n] {
				rewards[tt][n][k] = rng.Float64() * 40
			}
		}
	}
	check(13)
}

// TestWorkspaceCancellation mirrors the per-call path's cancellation
// contract: a done context returns a wrapped ctx.Err().
func TestWorkspaceCancellation(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 3
	cfg.K = 4
	cfg.ClassesPerSBS = 2
	cfg.CacheCap = 1
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	ws.Bind(in)
	rewards := make([][][]float64, in.T)
	for tt := range rewards {
		rewards[tt] = make([][]float64, in.N)
		for n := range rewards[tt] {
			rewards[tt][n] = make([]float64, in.K)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ws.SolveAll(ctx, rewards); err == nil {
		t.Fatal("workspace SolveAll ignored cancelled context")
	}
}
