package caching

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"edgecache/internal/workload"
)

func TestEmptyWhenRewardsZero(t *testing.T) {
	sp := &Subproblem{K: 3, Capacity: 2, Beta: 5, Reward: [][]float64{{0, 0, 0}, {0, 0, 0}}}
	x, obj, err := sp.SolveFlow()
	if err != nil {
		t.Fatal(err)
	}
	if obj != 0 {
		t.Fatalf("objective = %g, want 0", obj)
	}
	for _, row := range x {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("cached with zero rewards: %v", x)
			}
		}
	}
}

func TestCachesTopItemsWhenBetaZero(t *testing.T) {
	sp := &Subproblem{
		K:        4,
		Capacity: 2,
		Beta:     0,
		Reward:   [][]float64{{1, 5, 3, 2}, {4, 1, 6, 2}},
	}
	x, obj, err := sp.SolveFlow()
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: items 1, 2 (5+3); slot 1: items 0, 2 (4+6) → obj −18.
	if math.Abs(obj-(-18)) > 1e-9 {
		t.Fatalf("objective = %g, want -18", obj)
	}
	if x[0][1] != 1 || x[0][2] != 1 || x[1][0] != 1 || x[1][2] != 1 {
		t.Fatalf("placement = %v", x)
	}
}

func TestSwitchingCostSuppressesChurn(t *testing.T) {
	// Item 0 is slightly better at slot 0, item 1 slightly better at slot 1,
	// but switching costs more than the gain: hold one item throughout.
	sp := &Subproblem{
		K:        2,
		Capacity: 1,
		Beta:     7,
		Reward:   [][]float64{{5, 4}, {4, 5}},
	}
	x, obj, err := sp.SolveFlow()
	if err != nil {
		t.Fatal(err)
	}
	if x[0][0] != x[1][0] || x[0][1] != x[1][1] {
		t.Fatalf("placement churned despite β: %v", x)
	}
	// Either item held both slots: reward 9, one fetch → obj = 7 − 9 = −2.
	// (Switching would pay 14 in fetches for 10 of reward.)
	if math.Abs(obj-(-2)) > 1e-9 {
		t.Fatalf("objective = %g, want -2", obj)
	}
}

func TestInitialCacheAvoidsFetchCost(t *testing.T) {
	sp := &Subproblem{
		K:        2,
		Capacity: 1,
		Beta:     10,
		Initial:  []float64{1, 0},
		Reward:   [][]float64{{5, 6}}, // item 1 better, but not by β
	}
	x, obj, err := sp.SolveFlow()
	if err != nil {
		t.Fatal(err)
	}
	if x[0][0] != 1 || x[0][1] != 0 {
		t.Fatalf("placement = %v, want to keep initial item", x)
	}
	if math.Abs(obj-(-5)) > 1e-9 {
		t.Fatalf("objective = %g, want -5", obj)
	}
}

func TestInitialCacheReplacedWhenWorthIt(t *testing.T) {
	sp := &Subproblem{
		K:        2,
		Capacity: 1,
		Beta:     10,
		Initial:  []float64{1, 0},
		Reward:   [][]float64{{5, 20}},
	}
	x, obj, err := sp.SolveFlow()
	if err != nil {
		t.Fatal(err)
	}
	if x[0][1] != 1 {
		t.Fatalf("placement = %v, want item 1", x)
	}
	if math.Abs(obj-(-10)) > 1e-9 { // −20 reward + 10 fetch
		t.Fatalf("objective = %g, want -10", obj)
	}
}

func TestZeroCapacity(t *testing.T) {
	sp := &Subproblem{K: 2, Capacity: 0, Beta: 1, Reward: [][]float64{{9, 9}}}
	x, obj, err := sp.SolveFlow()
	if err != nil {
		t.Fatal(err)
	}
	if obj != 0 || x[0][0] != 0 || x[0][1] != 0 {
		t.Fatalf("zero-capacity solution cached something: %v, obj %g", x, obj)
	}
}

func TestValidation(t *testing.T) {
	cases := map[string]*Subproblem{
		"zero K":        {K: 0, Capacity: 1, Reward: [][]float64{{1}}},
		"neg capacity":  {K: 1, Capacity: -1, Reward: [][]float64{{1}}},
		"neg beta":      {K: 1, Capacity: 1, Beta: -1, Reward: [][]float64{{1}}},
		"empty horizon": {K: 1, Capacity: 1},
		"ragged reward": {K: 2, Capacity: 1, Reward: [][]float64{{1}}},
		"neg reward":    {K: 1, Capacity: 1, Reward: [][]float64{{-1}}},
		"nan reward":    {K: 1, Capacity: 1, Reward: [][]float64{{math.NaN()}}},
		"bad initial":   {K: 1, Capacity: 1, Initial: []float64{0.5}, Reward: [][]float64{{1}}},
		"short initial": {K: 2, Capacity: 1, Initial: []float64{1}, Reward: [][]float64{{1, 1}}},
	}
	for name, sp := range cases {
		if _, _, err := sp.SolveFlow(); err == nil {
			t.Errorf("%s: SolveFlow accepted invalid subproblem", name)
		}
		if _, _, err := sp.SolveLP(); err == nil {
			t.Errorf("%s: SolveLP accepted invalid subproblem", name)
		}
	}
}

// bruteForce enumerates all feasible placement trajectories of a tiny
// subproblem and returns the best objective.
func bruteForce(sp *Subproblem) float64 {
	horizon := len(sp.Reward)
	// Enumerate per-slot feasible placements.
	var slots []uint
	for mask := uint(0); mask < 1<<sp.K; mask++ {
		if popcount(mask) <= sp.Capacity {
			slots = append(slots, mask)
		}
	}
	best := math.Inf(1)
	seq := make([]uint, horizon)
	var rec func(t int)
	rec = func(t int) {
		if t == horizon {
			x := make([][]float64, horizon)
			for i, mask := range seq {
				x[i] = make([]float64, sp.K)
				for k := 0; k < sp.K; k++ {
					if mask&(1<<k) != 0 {
						x[i][k] = 1
					}
				}
			}
			if obj := sp.Objective(x); obj < best {
				best = obj
			}
			return
		}
		for _, mask := range slots {
			seq[t] = mask
			rec(t + 1)
		}
	}
	rec(0)
	return best
}

func popcount(m uint) int {
	c := 0
	for ; m != 0; m &= m - 1 {
		c++
	}
	return c
}

func randomSubproblem(r *rand.Rand, maxK, maxT int) *Subproblem {
	k := 1 + r.IntN(maxK)
	horizon := 1 + r.IntN(maxT)
	sp := &Subproblem{
		K:        k,
		Capacity: r.IntN(k + 1),
		Beta:     math.Round(r.Float64()*80) / 4,
		Reward:   make([][]float64, horizon),
	}
	for t := range sp.Reward {
		sp.Reward[t] = make([]float64, k)
		for i := range sp.Reward[t] {
			sp.Reward[t][i] = math.Round(r.Float64()*40) / 4
		}
	}
	if r.Float64() < 0.5 {
		sp.Initial = make([]float64, k)
		cached := 0
		for i := range sp.Initial {
			if cached < sp.Capacity && r.Float64() < 0.5 {
				sp.Initial[i] = 1
				cached++
			}
		}
	}
	return sp
}

// TestFlowMatchesBruteForce checks optimality on exhaustive tiny cases.
func TestFlowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 60; trial++ {
		sp := randomSubproblem(rng, 3, 3)
		x, obj, err := sp.SolveFlow()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sp.Objective(x)-obj) > 1e-9 {
			t.Fatalf("trial %d: reported obj %g, recomputed %g", trial, obj, sp.Objective(x))
		}
		want := bruteForce(sp)
		if math.Abs(obj-want) > 1e-9 {
			t.Fatalf("trial %d: flow %g, brute force %g (%+v)", trial, obj, want, sp)
		}
	}
}

// TestFlowMatchesLP cross-validates the two exact solvers on larger random
// subproblems (Theorem 1: both must hit the same integral optimum).
func TestFlowMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 25; trial++ {
		sp := randomSubproblem(rng, 5, 5)
		xf, objF, err := sp.SolveFlow()
		if err != nil {
			t.Fatalf("trial %d: flow: %v", trial, err)
		}
		xl, objL, err := sp.SolveLP()
		if err != nil {
			t.Fatalf("trial %d: lp: %v", trial, err)
		}
		if math.Abs(objF-objL) > 1e-6*(1+math.Abs(objF)) {
			t.Fatalf("trial %d: flow %g vs LP %g", trial, objF, objL)
		}
		// Placements may differ on ties; objectives must agree.
		if math.Abs(sp.Objective(xf)-sp.Objective(xl)) > 1e-6 {
			t.Fatalf("trial %d: objective mismatch between placements", trial)
		}
	}
}

// TestCapacityRespected verifies feasibility on larger random instances.
func TestCapacityRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 10; trial++ {
		sp := randomSubproblem(rng, 8, 12)
		x, _, err := sp.SolveFlow()
		if err != nil {
			t.Fatal(err)
		}
		for tt, row := range x {
			used := 0
			for _, v := range row {
				if v != 0 && v != 1 {
					t.Fatalf("trial %d: fractional entry %g", trial, v)
				}
				if v == 1 {
					used++
				}
			}
			if used > sp.Capacity {
				t.Fatalf("trial %d slot %d: %d items > capacity %d", trial, tt, used, sp.Capacity)
			}
		}
	}
}

func TestSolveAll(t *testing.T) {
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 6
	cfg.K = 8
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rewards := make([][][]float64, in.T)
	rng := rand.New(rand.NewPCG(31, 32))
	for tt := range rewards {
		rewards[tt] = make([][]float64, in.N)
		for n := range rewards[tt] {
			rewards[tt][n] = make([]float64, in.K)
			for k := range rewards[tt][n] {
				rewards[tt][n][k] = rng.Float64() * 50
			}
		}
	}
	plans, obj, err := SolveAll(context.Background(), in, rewards)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != in.T {
		t.Fatalf("plans cover %d slots, want %d", len(plans), in.T)
	}
	if obj >= 0 {
		t.Fatalf("objective %g should be negative with these rewards", obj)
	}
	for tt, p := range plans {
		if !p.IsIntegral(0) {
			t.Fatalf("slot %d placement not integral", tt)
		}
		for n := 0; n < in.N; n++ {
			if got := len(p.Items(n)); got > in.CacheCap[n] {
				t.Fatalf("slot %d SBS %d: %d items > cap", tt, n, got)
			}
		}
	}

	// Mismatched reward shape must error.
	if _, _, err := SolveAll(context.Background(), in, rewards[:2]); err == nil {
		t.Fatal("SolveAll accepted short rewards")
	}
}
