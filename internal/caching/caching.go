// Package caching solves the paper's caching subproblem P1 (eq. 18): given
// dual multipliers μ, each SBS independently chooses a placement trajectory
//
//	min  Σ_t ( β Σ_k (x^t_k − x^{t−1}_k)⁺  −  Σ_k ρ^t_k x^t_k )
//	s.t. Σ_k x^t_k ≤ C,  x^t_k ∈ {0, 1},
//
// where ρ^t_k = Σ_m μ^t_{m,k} is the dual reward for caching item k at
// slot t. Theorem 1 of the paper shows the LP relaxation is integral
// (totally unimodular constraints); this package provides both of the
// equivalent exact solvers:
//
//   - Subproblem.SolveLP — the paper's prescription ("simplex method is
//     applied"), via the linearisation of eqs. (21)–(22);
//   - Subproblem.SolveFlow — the same LP recognised as a min-cost flow on a
//     time-expanded cache-slot network, orders of magnitude faster and used
//     by default.
//
// Tests cross-validate the two on random subproblems.
package caching

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgecache/internal/lp"
	"edgecache/internal/mcflow"
	"edgecache/internal/model"
	"edgecache/internal/obs"
)

// Always-on P1 metrics (atomic; read by -metrics and /debug/vars).
var (
	mFlowSolves = obs.Default.Counter("caching.p1_flow_solves")
	mFlowTime   = obs.Default.Timer("caching.p1_flow_solve")
)

// Subproblem is P1 for a single SBS over a horizon of len(Reward) slots.
type Subproblem struct {
	// K is the catalogue size, Capacity the cache size C.
	K, Capacity int
	// Beta is the per-item replacement cost β.
	Beta float64
	// Initial is x⁰ (length K, integral); nil means an empty cache.
	Initial []float64
	// Reward[t][k] is ρ^t_k ≥ 0, the summed dual multipliers.
	Reward [][]float64
}

// validate checks shapes and domains.
func (sp *Subproblem) validate() error {
	if sp.K <= 0 {
		return fmt.Errorf("caching: K = %d, want > 0", sp.K)
	}
	if sp.Capacity < 0 {
		return fmt.Errorf("caching: capacity = %d, want ≥ 0", sp.Capacity)
	}
	if sp.Beta < 0 {
		return fmt.Errorf("caching: beta = %g, want ≥ 0", sp.Beta)
	}
	if len(sp.Reward) == 0 {
		return fmt.Errorf("caching: empty reward horizon")
	}
	for t, row := range sp.Reward {
		if len(row) != sp.K {
			return fmt.Errorf("caching: reward row %d has %d entries, want %d", t, len(row), sp.K)
		}
		for k, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("caching: reward[%d][%d] = %g, want finite ≥ 0", t, k, v)
			}
		}
	}
	if sp.Initial != nil {
		if len(sp.Initial) != sp.K {
			return fmt.Errorf("caching: initial has %d entries, want %d", len(sp.Initial), sp.K)
		}
		for k, v := range sp.Initial {
			if math.Abs(v) > model.DefaultTol && math.Abs(v-1) > model.DefaultTol {
				return fmt.Errorf("caching: initial[%d] = %g is not integral", k, v)
			}
		}
	}
	return nil
}

func (sp *Subproblem) initiallyCached(k int) bool {
	return sp.Initial != nil && sp.Initial[k] >= 0.5
}

// Objective evaluates the P1 objective of a placement trajectory.
func (sp *Subproblem) Objective(x [][]float64) float64 {
	var obj float64
	for t, row := range x {
		for k, v := range row {
			prev := 0.0
			if t > 0 {
				prev = x[t-1][k]
			} else if sp.initiallyCached(k) {
				prev = 1
			}
			if d := v - prev; d > 0 {
				obj += sp.Beta * d
			}
			obj -= sp.Reward[t][k] * v
		}
	}
	return obj
}

// SolveFlow solves P1 exactly on the time-expanded flow network and returns
// the integral placement x[t][k] ∈ {0, 1} and its objective value.
//
// Network: C units of "cache slot" flow from a start pool to an end pool.
// At every slot a unit either idles in the pool (cost 0) or occupies an
// item node (the unit-capacity in→out arc enforces at most one copy and
// carries cost −ρ^t_k); entering an item from the pool pays β except for
// initially cached items at slot 0. Flow integrality is exactly the total
// unimodularity of Theorem 1.
func (sp *Subproblem) SolveFlow() ([][]float64, float64, error) {
	if err := sp.validate(); err != nil {
		return nil, 0, err
	}
	mFlowSolves.Inc()
	start := time.Now()
	defer func() { mFlowTime.Observe(time.Since(start)) }()
	horizon := len(sp.Reward)

	// Node layout: pools 0..horizon, then item in/out pairs.
	pool := func(t int) int { return t }
	itemIn := func(t, k int) int { return horizon + 1 + 2*(t*sp.K+k) }
	itemOut := func(t, k int) int { return itemIn(t, k) + 1 }
	g := mcflow.NewGraph(horizon + 1 + 2*horizon*sp.K)

	holdArcs := make([][]mcflow.Arc, horizon)
	for t := 0; t < horizon; t++ {
		holdArcs[t] = make([]mcflow.Arc, sp.K)
		g.AddArc(pool(t), pool(t+1), sp.Capacity, 0) // idle
		for k := 0; k < sp.K; k++ {
			fetchCost := sp.Beta
			if t == 0 && sp.initiallyCached(k) {
				fetchCost = 0
			}
			g.AddArc(pool(t), itemIn(t, k), 1, fetchCost)
			holdArcs[t][k] = g.AddArc(itemIn(t, k), itemOut(t, k), 1, -sp.Reward[t][k])
			g.AddArc(itemOut(t, k), pool(t+1), 1, 0) // evict
			if t+1 < horizon {
				g.AddArc(itemOut(t, k), itemIn(t+1, k), 1, 0) // keep
			}
		}
	}

	if _, err := g.Solve(pool(0), pool(horizon), sp.Capacity); err != nil {
		return nil, 0, fmt.Errorf("caching: flow solve: %w", err)
	}

	x := make([][]float64, horizon)
	for t := range x {
		x[t] = make([]float64, sp.K)
		for k := 0; k < sp.K; k++ {
			if g.Flow(holdArcs[t][k]) > 0 {
				x[t][k] = 1
			}
		}
	}
	// Report the canonical objective of the placement rather than the flow
	// solver's running cost: the latter accumulates in augmentation order,
	// whose float rounding depends on the path history, while Objective is
	// a pure function of the placement — the property the incremental
	// workspace path relies on for bit-stable totals (DESIGN.md §12).
	return x, sp.Objective(x), nil
}

// SolveLP solves P1 via the paper's LP linearisation (eqs. 21–22) with the
// simplex solver and returns the (provably integral) placement. It exists
// as the faithful-to-the-paper method and as cross-validation for
// SolveFlow; prefer SolveFlow for anything beyond small horizons.
func (sp *Subproblem) SolveLP() ([][]float64, float64, error) {
	if err := sp.validate(); err != nil {
		return nil, 0, err
	}
	horizon := len(sp.Reward)
	kt := horizon * sp.K
	xIdx := func(t, k int) int { return t*sp.K + k }
	pIdx := func(t, k int) int { return kt + t*sp.K + k }

	prob := lp.NewProblem(2 * kt)
	for t := 0; t < horizon; t++ {
		for k := 0; k < sp.K; k++ {
			prob.C[xIdx(t, k)] = -sp.Reward[t][k]
			prob.C[pIdx(t, k)] = sp.Beta
		}
	}
	// Capacity rows: Σ_k x ≤ C per slot.
	for t := 0; t < horizon; t++ {
		row := make([]float64, 2*kt)
		for k := 0; k < sp.K; k++ {
			row[xIdx(t, k)] = 1
		}
		prob.AddConstraint(row, lp.LE, float64(sp.Capacity))
	}
	// Switching rows: x^t − x^{t−1} − p^t ≤ 0 (eq. 22), with x⁰ constant.
	for t := 0; t < horizon; t++ {
		for k := 0; k < sp.K; k++ {
			row := make([]float64, 2*kt)
			row[xIdx(t, k)] = 1
			row[pIdx(t, k)] = -1
			rhs := 0.0
			if t > 0 {
				row[xIdx(t-1, k)] = -1
			} else if sp.initiallyCached(k) {
				rhs = 1
			}
			prob.AddConstraint(row, lp.LE, rhs)
		}
	}
	// Relaxed integrality: x ≤ 1 (Theorem 1 guarantees an integral vertex).
	for t := 0; t < horizon; t++ {
		for k := 0; k < sp.K; k++ {
			row := make([]float64, 2*kt)
			row[xIdx(t, k)] = 1
			prob.AddConstraint(row, lp.LE, 1)
		}
	}

	sol, err := prob.Solve(lp.Options{})
	if err != nil {
		return nil, 0, fmt.Errorf("caching: simplex solve: %w", err)
	}
	x := make([][]float64, horizon)
	for t := range x {
		x[t] = make([]float64, sp.K)
		for k := 0; k < sp.K; k++ {
			v := sol.X[xIdx(t, k)]
			if math.Abs(v) > 1e-5 && math.Abs(v-1) > 1e-5 {
				return nil, 0, fmt.Errorf("caching: LP vertex not integral at (t=%d, k=%d): %g", t, k, v)
			}
			if v >= 0.5 {
				x[t][k] = 1
			}
		}
	}
	// Report the objective of the rounded placement (identical to the LP
	// value up to tolerance, exactly consistent with Objective()).
	return x, sp.Objective(x), nil
}

// SolveAll solves P1 for every SBS of an instance given per-(t, n) rewards
// ρ^t_{n,k} (rewards[t][n][k]) and returns per-slot placements plus the
// total P1 objective value. Cancellation is checked before each per-SBS
// flow solve; a done ctx returns a wrapped ctx.Err().
func SolveAll(ctx context.Context, in *model.Instance, rewards [][][]float64) ([]model.CachePlan, float64, error) {
	if len(rewards) != in.T {
		return nil, 0, fmt.Errorf("caching: rewards cover %d slots, want %d", len(rewards), in.T)
	}
	plans := make([]model.CachePlan, in.T)
	for t := range plans {
		plans[t] = model.NewCachePlan(in.N, in.K)
	}
	initial := in.InitialPlan()

	var total float64
	for n := 0; n < in.N; n++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("caching: SBS %d: %w", n, err)
			}
		}
		reward := make([][]float64, in.T)
		for t := 0; t < in.T; t++ {
			if len(rewards[t]) != in.N || len(rewards[t][n]) != in.K {
				return nil, 0, fmt.Errorf("caching: rewards[%d] shaped (%d SBS)", t, len(rewards[t]))
			}
			reward[t] = rewards[t][n]
		}
		// The time-expanded flow network carries one capacity per SBS, so
		// under a fault overlay it plans against the horizon's floor
		// min_t C^t_n — conservative inside a window, with the exact
		// per-slot C^t_n enforced at rounding/commit time.
		sp := &Subproblem{
			K:        in.K,
			Capacity: in.CacheCapFloor(n),
			Beta:     in.Beta[n],
			Initial:  initial[n],
			Reward:   reward,
		}
		x, obj, err := sp.SolveFlow()
		if err != nil {
			return nil, 0, fmt.Errorf("caching: SBS %d: %w", n, err)
		}
		total += obj
		for t := 0; t < in.T; t++ {
			copy(plans[t][n], x[t])
		}
	}
	return plans, total, nil
}
