package caching

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgecache/internal/mcflow"
	"edgecache/internal/model"
)

// Workspace holds the per-instance state of the P1 caching subproblem so
// that repeated solves under changing dual rewards — one per primal-dual
// iteration — reuse one time-expanded flow network per SBS instead of
// rebuilding it. Only the hold-arc costs depend on μ; topology, capacities
// and fetch costs are fixed by the instance, so each iteration is a
// Reset + SetCost pass followed by a solve on recycled solver scratch.
//
// A Workspace is not safe for concurrent use. The zero value is usable
// after Bind.
type Workspace struct {
	in *model.Instance

	// graphs[n] is SBS n's cache-slot network; holdArcs[n][t][k] the arc
	// whose flow indicates item k cached at slot t.
	graphs   []*mcflow.Graph
	holdArcs [][][]mcflow.Arc

	// plans is the placement buffer returned by SolveAll; every entry is
	// rewritten on each call.
	plans []model.CachePlan
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Bind sizes the workspace for an instance and builds the per-SBS flow
// networks. It must be called before SolveAll and again whenever the
// instance changes. The construction replicates Subproblem.SolveFlow's arc
// order exactly so the solved flows — and hence the placements — match the
// per-call path bit for bit.
func (ws *Workspace) Bind(in *model.Instance) {
	ws.in = in
	horizon := in.T

	if cap(ws.graphs) < in.N {
		ws.graphs = make([]*mcflow.Graph, in.N)
		ws.holdArcs = make([][][]mcflow.Arc, in.N)
	} else {
		ws.graphs = ws.graphs[:in.N]
		ws.holdArcs = ws.holdArcs[:in.N]
	}
	initial := in.InitialPlan()
	for n := 0; n < in.N; n++ {
		// Node layout mirrors SolveFlow: pools 0..horizon, then item
		// in/out pairs.
		pool := func(t int) int { return t }
		itemIn := func(t, k int) int { return horizon + 1 + 2*(t*in.K+k) }
		itemOut := func(t, k int) int { return itemIn(t, k) + 1 }
		g := mcflow.NewGraph(horizon + 1 + 2*horizon*in.K)

		hold := make([][]mcflow.Arc, horizon)
		for t := 0; t < horizon; t++ {
			hold[t] = make([]mcflow.Arc, in.K)
			// Idle capacity uses the horizon floor min_t C^t_n: one
			// commodity per SBS cannot express per-slot caps (see the
			// package-level SolveAll).
			g.AddArc(pool(t), pool(t+1), in.CacheCapFloor(n), 0) // idle
			for k := 0; k < in.K; k++ {
				fetchCost := in.Beta[n]
				if t == 0 && initial[n][k] >= 0.5 {
					fetchCost = 0
				}
				g.AddArc(pool(t), itemIn(t, k), 1, fetchCost)
				// Hold cost is the per-iteration −ρ^t_{n,k}, installed by
				// SolveAll via SetCost.
				hold[t][k] = g.AddArc(itemIn(t, k), itemOut(t, k), 1, 0)
				g.AddArc(itemOut(t, k), pool(t+1), 1, 0) // evict
				if t+1 < horizon {
					g.AddArc(itemOut(t, k), itemIn(t+1, k), 1, 0) // keep
				}
			}
		}
		ws.graphs[n] = g
		ws.holdArcs[n] = hold
	}

	if cap(ws.plans) < in.T {
		ws.plans = make([]model.CachePlan, in.T)
	} else {
		ws.plans = ws.plans[:in.T]
	}
	for t := range ws.plans {
		p := ws.plans[t]
		if len(p) != in.N || (in.N > 0 && cap(p[0]) < in.K) {
			ws.plans[t] = model.NewCachePlan(in.N, in.K)
			continue
		}
		for n := range p {
			p[n] = p[n][:in.K]
		}
	}
}

// SolveAll is the workspace counterpart of the package-level SolveAll: it
// solves P1 for every SBS under the given rewards and returns the per-slot
// placements (aliasing workspace memory, overwritten by the next call) and
// the total P1 objective. Behaviour, summation order and solutions are
// identical to the per-call path.
func (ws *Workspace) SolveAll(ctx context.Context, rewards [][][]float64) ([]model.CachePlan, float64, error) {
	in := ws.in
	if in == nil {
		panic("caching: Workspace.SolveAll before Bind")
	}
	if len(rewards) != in.T {
		return nil, 0, fmt.Errorf("caching: rewards cover %d slots, want %d", len(rewards), in.T)
	}

	var total float64
	for n := 0; n < in.N; n++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("caching: SBS %d: %w", n, err)
			}
		}
		for t := 0; t < in.T; t++ {
			if len(rewards[t]) != in.N || len(rewards[t][n]) != in.K {
				return nil, 0, fmt.Errorf("caching: rewards[%d] shaped (%d SBS)", t, len(rewards[t]))
			}
			for k, v := range rewards[t][n] {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, 0, fmt.Errorf("caching: SBS %d: caching: reward[%d][%d] = %g, want finite ≥ 0", n, t, k, v)
				}
			}
		}

		mFlowSolves.Inc()
		start := time.Now()
		g := ws.graphs[n]
		g.Reset()
		hold := ws.holdArcs[n]
		for t := 0; t < in.T; t++ {
			row := rewards[t][n]
			for k := 0; k < in.K; k++ {
				g.SetCost(hold[t][k], -row[k])
			}
		}
		res, err := g.Solve(0, in.T, in.CacheCapFloor(n))
		mFlowTime.Observe(time.Since(start))
		if err != nil {
			return nil, 0, fmt.Errorf("caching: SBS %d: caching: flow solve: %w", n, err)
		}
		total += res.Cost
		for t := 0; t < in.T; t++ {
			dst := ws.plans[t][n]
			for k := 0; k < in.K; k++ {
				if g.Flow(hold[t][k]) > 0 {
					dst[k] = 1
				} else {
					dst[k] = 0
				}
			}
		}
	}
	return ws.plans, total, nil
}
