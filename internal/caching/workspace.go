package caching

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgecache/internal/mcflow"
	"edgecache/internal/model"
)

// Workspace holds the per-instance state of the P1 caching subproblem so
// that repeated solves under changing dual rewards — one per primal-dual
// iteration — reuse one time-expanded flow network per SBS instead of
// rebuilding it. Only the hold-arc costs depend on μ; topology, capacities
// and fetch costs are fixed by the instance, so each iteration is a
// Reset + SetCost pass followed by a solve on recycled solver scratch.
//
// A Workspace is not safe for concurrent use. The zero value is usable
// after Bind.
type Workspace struct {
	in *model.Instance

	// graphs[n] is SBS n's cache-slot network; holdArcs[n][t][ci] the arc
	// whose flow indicates (compact) item ci cached at slot t.
	graphs   []*mcflow.Graph
	holdArcs [][][]mcflow.Arc

	// items[n], when non-nil, maps SBS n's compact item index to its
	// global content id: the network was built over that candidate set
	// only. A nil row (or nil items) means the network spans all K items
	// with the identity numbering.
	items [][]int

	// plans is the placement buffer returned by SolveAll; every entry is
	// rewritten on each call.
	plans []model.CachePlan
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Bind sizes the workspace for an instance and builds the per-SBS flow
// networks over the full catalogue. It must be called before SolveAll and
// again whenever the instance changes. The construction replicates
// Subproblem.SolveFlow's arc order exactly so the solved flows — and hence
// the placements — match the per-call path bit for bit.
func (ws *Workspace) Bind(in *model.Instance) { ws.BindPruned(in, nil) }

// BindPruned is Bind with per-SBS candidate pruning: cands[n], when
// non-nil and a strict subset of the catalogue, restricts SBS n's network
// to those items (sorted ascending global ids, e.g. Instance.Candidates),
// shrinking it from O(T·K) to O(T·|cands[n]|) nodes and arcs. Placements
// returned by SolveAll stay full K-width, with excluded items pinned to 0.
//
// Pruning is exact whenever every reward outside the candidate set is zero
// and no excluded item is initially cached (both hold for the dual rewards
// ρ = Σ_m μ of Algorithm 1 over Instance.Candidates): an excluded item
// earns nothing and costs β_n ≥ 0 to fetch, so some optimal flow of the
// full network never touches it, and the pruned optimum has the same
// objective. At β_n = 0 the full network may realise that optimum with
// cost-equal flow through a zero-reward item; the pruned solution is then
// one of the optimal ties, not bit-identical to the unpruned one.
func (ws *Workspace) BindPruned(in *model.Instance, cands [][]int) {
	ws.in = in
	horizon := in.T

	if cap(ws.graphs) < in.N {
		ws.graphs = make([]*mcflow.Graph, in.N)
		ws.holdArcs = make([][][]mcflow.Arc, in.N)
	} else {
		ws.graphs = ws.graphs[:in.N]
		ws.holdArcs = ws.holdArcs[:in.N]
	}
	ws.items = nil
	if cands != nil {
		ws.items = make([][]int, in.N)
	}
	initial := in.InitialPlan()
	for n := 0; n < in.N; n++ {
		items := []int(nil)
		kc := in.K
		if cands != nil && cands[n] != nil && len(cands[n]) < in.K {
			items = cands[n]
			kc = len(items)
			ws.items[n] = items
		}
		// Node layout mirrors SolveFlow: pools 0..horizon, then item
		// in/out pairs (over the compact numbering when pruned).
		pool := func(t int) int { return t }
		itemIn := func(t, ci int) int { return horizon + 1 + 2*(t*kc+ci) }
		itemOut := func(t, ci int) int { return itemIn(t, ci) + 1 }
		g := mcflow.NewGraph(horizon + 1 + 2*horizon*kc)

		hold := make([][]mcflow.Arc, horizon)
		for t := 0; t < horizon; t++ {
			hold[t] = make([]mcflow.Arc, kc)
			// Idle capacity uses the horizon floor min_t C^t_n: one
			// commodity per SBS cannot express per-slot caps (see the
			// package-level SolveAll).
			g.AddArc(pool(t), pool(t+1), in.CacheCapFloor(n), 0) // idle
			for ci := 0; ci < kc; ci++ {
				k := ci
				if items != nil {
					k = items[ci]
				}
				fetchCost := in.Beta[n]
				if t == 0 && initial[n][k] >= 0.5 {
					fetchCost = 0
				}
				g.AddArc(pool(t), itemIn(t, ci), 1, fetchCost)
				// Hold cost is the per-iteration −ρ^t_{n,k}, installed by
				// SolveAll via SetCost.
				hold[t][ci] = g.AddArc(itemIn(t, ci), itemOut(t, ci), 1, 0)
				g.AddArc(itemOut(t, ci), pool(t+1), 1, 0) // evict
				if t+1 < horizon {
					g.AddArc(itemOut(t, ci), itemIn(t+1, ci), 1, 0) // keep
				}
			}
		}
		ws.graphs[n] = g
		ws.holdArcs[n] = hold
	}

	if cap(ws.plans) < in.T {
		ws.plans = make([]model.CachePlan, in.T)
	} else {
		ws.plans = ws.plans[:in.T]
	}
	for t := range ws.plans {
		p := ws.plans[t]
		if len(p) != in.N || (in.N > 0 && cap(p[0]) < in.K) {
			ws.plans[t] = model.NewCachePlan(in.N, in.K)
			continue
		}
		for n := range p {
			p[n] = p[n][:in.K]
		}
	}
}

// SolveAll is the workspace counterpart of the package-level SolveAll: it
// solves P1 for every SBS under the given rewards and returns the per-slot
// placements (aliasing workspace memory, overwritten by the next call) and
// the total P1 objective. Behaviour, summation order and solutions are
// identical to the per-call path.
func (ws *Workspace) SolveAll(ctx context.Context, rewards [][][]float64) ([]model.CachePlan, float64, error) {
	in := ws.in
	if in == nil {
		panic("caching: Workspace.SolveAll before Bind")
	}
	if len(rewards) != in.T {
		return nil, 0, fmt.Errorf("caching: rewards cover %d slots, want %d", len(rewards), in.T)
	}

	var total float64
	for n := 0; n < in.N; n++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("caching: SBS %d: %w", n, err)
			}
		}
		for t := 0; t < in.T; t++ {
			if len(rewards[t]) != in.N || len(rewards[t][n]) != in.K {
				return nil, 0, fmt.Errorf("caching: rewards[%d] shaped (%d SBS)", t, len(rewards[t]))
			}
			for k, v := range rewards[t][n] {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, 0, fmt.Errorf("caching: SBS %d: caching: reward[%d][%d] = %g, want finite ≥ 0", n, t, k, v)
				}
			}
		}

		mFlowSolves.Inc()
		start := time.Now()
		g := ws.graphs[n]
		g.Reset()
		hold := ws.holdArcs[n]
		var items []int
		if ws.items != nil {
			items = ws.items[n]
		}
		for t := 0; t < in.T; t++ {
			row := rewards[t][n]
			if items == nil {
				for k := 0; k < in.K; k++ {
					g.SetCost(hold[t][k], -row[k])
				}
			} else {
				for ci, k := range items {
					g.SetCost(hold[t][ci], -row[k])
				}
			}
		}
		res, err := g.Solve(0, in.T, in.CacheCapFloor(n))
		mFlowTime.Observe(time.Since(start))
		if err != nil {
			return nil, 0, fmt.Errorf("caching: SBS %d: caching: flow solve: %w", n, err)
		}
		total += res.Cost
		for t := 0; t < in.T; t++ {
			dst := ws.plans[t][n]
			if items == nil {
				for k := 0; k < in.K; k++ {
					if g.Flow(hold[t][k]) > 0 {
						dst[k] = 1
					} else {
						dst[k] = 0
					}
				}
				continue
			}
			for k := range dst {
				dst[k] = 0
			}
			for ci, k := range items {
				if g.Flow(hold[t][ci]) > 0 {
					dst[k] = 1
				}
			}
		}
	}
	return ws.plans, total, nil
}
