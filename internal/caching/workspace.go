package caching

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgecache/internal/mcflow"
	"edgecache/internal/model"
	"edgecache/internal/obs"
)

// Incremental-path metrics (atomic; read by -metrics and /debug/vars).
var (
	mSBSSkips    = obs.Default.Counter("caching.p1_sbs_skips")
	mResolveKept = obs.Default.Counter("caching.p1_resolve_kept")
	mResolveCold = obs.Default.Counter("caching.p1_resolve_fresh")
)

// sbsNet is one SBS's bound time-expanded network plus everything needed
// to reuse it: the geometry pins that decide whether a later Bind can
// keep the graph, and the solved-state cache that lets SolveAllRows skip
// the SBS outright when none of its reward rows moved.
type sbsNet struct {
	g    *mcflow.Graph
	hold [][]mcflow.Arc // hold[t][ci]: flow > 0 ⇔ item ci cached at slot t
	// fetch0[ci] is the slot-0 pool→item arc, the only arc whose cost
	// depends on the initial cache and therefore the only one Bind must
	// retarget when reusing the graph across windows.
	fetch0 []mcflow.Arc
	// items maps the compact item index to its global content id; nil
	// means the network spans all K items with the identity numbering.
	items []int

	// Geometry pins checked by Bind before reusing the graph.
	horizon, kc, capFloor int
	beta                  float64
	built                 bool

	// solved reports that the graph's hold costs equal the rewards of the
	// last SolveAllRows call, the flow solves them, the placement rows in
	// Workspace.plans are current, and obj caches the canonical objective.
	solved bool
	obj    float64
}

// Workspace holds the per-instance state of the P1 caching subproblem so
// that repeated solves under changing dual rewards — one per primal-dual
// iteration — reuse one time-expanded flow network per SBS instead of
// rebuilding it. Only the hold-arc costs depend on μ; topology, capacities
// and fetch costs are fixed by the instance, so each iteration is a
// Reset + SetCost pass followed by a solve on recycled solver scratch —
// or, on the delta-aware SolveAllRows path, a SetCost pass over the dirty
// reward rows only, followed by an incremental mcflow.Resolve.
//
// A Workspace is not safe for concurrent use. The zero value is usable
// after Bind.
type Workspace struct {
	in   *model.Instance
	nets []sbsNet

	// initial aliases the InitialPlan captured at Bind, the x⁰ reference
	// for canonical objectives.
	initial model.CachePlan

	// plans is the placement buffer returned by SolveAll; rows of solved
	// SBSs persist across calls (that persistence is what lets a skipped
	// SBS return its previous placement untouched).
	plans []model.CachePlan
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Bind sizes the workspace for an instance and builds the per-SBS flow
// networks over the full catalogue. It must be called before SolveAll and
// again whenever the instance changes. The construction replicates
// Subproblem.SolveFlow's arc order exactly so the solved flows — and hence
// the placements — match the per-call path bit for bit.
func (ws *Workspace) Bind(in *model.Instance) { ws.BindPruned(in, nil) }

// BindPruned is Bind with per-SBS candidate pruning: cands[n], when
// non-nil and a strict subset of the catalogue, restricts SBS n's network
// to those items (sorted ascending global ids, e.g. Instance.Candidates),
// shrinking it from O(T·K) to O(T·|cands[n]|) nodes and arcs. Placements
// returned by SolveAll stay full K-width, with excluded items pinned to 0.
//
// Pruning is exact whenever every reward outside the candidate set is zero
// and no excluded item is initially cached (both hold for the dual rewards
// ρ = Σ_m μ of Algorithm 1 over Instance.Candidates): an excluded item
// earns nothing and costs β_n ≥ 0 to fetch, so some optimal flow of the
// full network never touches it, and the pruned optimum has the same
// objective. At β_n = 0 the full network may realise that optimum with
// cost-equal flow through a zero-reward item; the pruned solution is then
// one of the optimal ties, not bit-identical to the unpruned one.
//
// When an SBS's network geometry is unchanged from the previous binding —
// same horizon, candidate set, capacity floor and β — the graph is kept
// rather than rebuilt: only the slot-0 fetch costs (the initial cache) are
// retargeted, and the retained flow becomes the warm start of the next
// Resolve. The cross-window replan path of the online controllers hits
// this on every window, making rebinding allocation-free in steady state.
func (ws *Workspace) BindPruned(in *model.Instance, cands [][]int) {
	ws.in = in
	horizon := in.T

	if cap(ws.nets) < in.N {
		old := ws.nets
		ws.nets = make([]sbsNet, in.N)
		copy(ws.nets, old)
	} else {
		ws.nets = ws.nets[:in.N]
	}
	initial := in.InitialPlan()
	ws.initial = initial
	for n := 0; n < in.N; n++ {
		items := []int(nil)
		kc := in.K
		if cands != nil && cands[n] != nil && len(cands[n]) < in.K {
			items = cands[n]
			kc = len(items)
		}
		net := &ws.nets[n]
		capFloor := in.CacheCapFloor(n)
		net.solved = false
		if net.built && net.horizon == horizon && net.kc == kc &&
			net.capFloor == capFloor && net.beta == in.Beta[n] && sameItems(net.items, items) {
			// Reuse the network: only the slot-0 fetch costs depend on
			// the initial cache. SetCost diffs against the stored bits and
			// records dirty arcs, so the retained flow stays a valid warm
			// start for Resolve.
			net.items = items
			for ci := 0; ci < kc; ci++ {
				k := ci
				if items != nil {
					k = items[ci]
				}
				fetchCost := in.Beta[n]
				if initial[n][k] >= 0.5 {
					fetchCost = 0
				}
				net.g.SetCost(net.fetch0[ci], fetchCost)
			}
			continue
		}

		// Node layout mirrors SolveFlow: pools 0..horizon, then item
		// in/out pairs (over the compact numbering when pruned).
		pool := func(t int) int { return t }
		itemIn := func(t, ci int) int { return horizon + 1 + 2*(t*kc+ci) }
		itemOut := func(t, ci int) int { return itemIn(t, ci) + 1 }
		g := mcflow.NewGraph(horizon + 1 + 2*horizon*kc)

		hold := make([][]mcflow.Arc, horizon)
		fetch0 := make([]mcflow.Arc, kc)
		for t := 0; t < horizon; t++ {
			hold[t] = make([]mcflow.Arc, kc)
			// Idle capacity uses the horizon floor min_t C^t_n: one
			// commodity per SBS cannot express per-slot caps (see the
			// package-level SolveAll).
			g.AddArc(pool(t), pool(t+1), capFloor, 0) // idle
			for ci := 0; ci < kc; ci++ {
				k := ci
				if items != nil {
					k = items[ci]
				}
				fetchCost := in.Beta[n]
				if t == 0 && initial[n][k] >= 0.5 {
					fetchCost = 0
				}
				fetch := g.AddArc(pool(t), itemIn(t, ci), 1, fetchCost)
				if t == 0 {
					fetch0[ci] = fetch
				}
				// Hold cost is the per-iteration −ρ^t_{n,k}, installed by
				// SolveAll via SetCost.
				hold[t][ci] = g.AddArc(itemIn(t, ci), itemOut(t, ci), 1, 0)
				g.AddArc(itemOut(t, ci), pool(t+1), 1, 0) // evict
				if t+1 < horizon {
					g.AddArc(itemOut(t, ci), itemIn(t+1, ci), 1, 0) // keep
				}
			}
		}
		net.g = g
		net.hold = hold
		net.fetch0 = fetch0
		net.items = items
		net.horizon, net.kc, net.capFloor, net.beta = horizon, kc, capFloor, in.Beta[n]
		net.built = true
	}

	if cap(ws.plans) < in.T {
		ws.plans = make([]model.CachePlan, in.T)
	} else {
		ws.plans = ws.plans[:in.T]
	}
	for t := range ws.plans {
		p := ws.plans[t]
		if len(p) != in.N || (in.N > 0 && cap(p[0]) < in.K) {
			ws.plans[t] = model.NewCachePlan(in.N, in.K)
			continue
		}
		for n := range p {
			p[n] = p[n][:in.K]
		}
	}
}

// sameItems reports whether two candidate lists describe the same compact
// catalogue (both nil meaning the full identity catalogue).
func sameItems(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// FlowStats aggregates the Resolve outcome counters of the bound per-SBS
// networks (see mcflow.ResolveStats).
func (ws *Workspace) FlowStats() mcflow.ResolveStats {
	var st mcflow.ResolveStats
	for n := range ws.nets {
		if !ws.nets[n].built {
			continue
		}
		s := ws.nets[n].g.Stats()
		st.Kept += s.Kept
		st.Repaired += s.Repaired
		st.Fresh += s.Fresh
	}
	return st
}

// SolveAll is the workspace counterpart of the package-level SolveAll: it
// solves P1 for every SBS under the given rewards and returns the per-slot
// placements (aliasing workspace memory, overwritten by the next call) and
// the total P1 objective. Behaviour, summation order and solutions are
// identical to the per-call path.
func (ws *Workspace) SolveAll(ctx context.Context, rewards [][][]float64) ([]model.CachePlan, float64, error) {
	return ws.SolveAllRows(ctx, rewards, nil)
}

// SolveAllRows is SolveAll with per-(t, n) change tracking: dirty[t][n]
// reports whether rewards[t][n] may differ from the previous call's. An
// SBS none of whose rows are dirty is skipped outright — its placement
// rows and cached objective are returned unchanged — and a dirty SBS
// retargets only its dirty rows before re-optimising incrementally via
// mcflow.Resolve. A nil dirty runs the from-scratch baseline (Reset, full
// SetCost sweep, zero-flow Solve) for every SBS.
//
// Both paths compute the per-SBS objective canonically from the placement
// (Subproblem.Objective order), so totals are bit-identical between the
// incremental and from-scratch paths whenever the placements are — which
// mcflow.Resolve's uniqueness certificate guarantees. Reward validation
// only covers the rows actually retargeted: an invalid value in a clean
// row of a dirty run is reported by the baseline path but unseen here.
func (ws *Workspace) SolveAllRows(ctx context.Context, rewards [][][]float64, dirty [][]bool) ([]model.CachePlan, float64, error) {
	in := ws.in
	if in == nil {
		panic("caching: Workspace.SolveAll before Bind")
	}
	if len(rewards) != in.T {
		return nil, 0, fmt.Errorf("caching: rewards cover %d slots, want %d", len(rewards), in.T)
	}
	if dirty != nil && len(dirty) != in.T {
		return nil, 0, fmt.Errorf("caching: dirty rows cover %d slots, want %d", len(dirty), in.T)
	}

	var total float64
	for n := 0; n < in.N; n++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("caching: SBS %d: %w", n, err)
			}
		}
		net := &ws.nets[n]
		// A net that has never been solved must apply every row regardless
		// of the dirty list: its graph may hold stale costs from a
		// previous binding.
		allRows := dirty == nil || !net.solved
		if !allRows {
			rowsDirty := false
			for t := 0; t < in.T; t++ {
				if dirty[t][n] {
					rowsDirty = true
					break
				}
			}
			if !rowsDirty {
				mSBSSkips.Inc()
				total += net.obj
				continue
			}
		}

		mFlowSolves.Inc()
		start := time.Now()
		g := net.g
		if dirty == nil {
			g.Reset()
		}
		for t := 0; t < in.T; t++ {
			if !allRows && !dirty[t][n] {
				continue
			}
			if len(rewards[t]) != in.N || len(rewards[t][n]) != in.K {
				return nil, 0, fmt.Errorf("caching: rewards[%d] shaped (%d SBS)", t, len(rewards[t]))
			}
			row := rewards[t][n]
			for k, v := range row {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, 0, fmt.Errorf("caching: SBS %d: caching: reward[%d][%d] = %g, want finite ≥ 0", n, t, k, v)
				}
			}
			hold := net.hold[t]
			if net.items == nil {
				for k := 0; k < in.K; k++ {
					g.SetCost(hold[k], -row[k])
				}
			} else {
				for ci, k := range net.items {
					g.SetCost(hold[ci], -row[k])
				}
			}
		}
		var err error
		if dirty == nil {
			_, err = g.Solve(0, in.T, net.capFloor)
		} else {
			before := g.Stats()
			_, err = g.Resolve(0, in.T, net.capFloor)
			if after := g.Stats(); after.Fresh > before.Fresh {
				mResolveCold.Inc()
			} else {
				mResolveKept.Inc()
			}
		}
		mFlowTime.Observe(time.Since(start))
		if err != nil {
			net.solved = false
			return nil, 0, fmt.Errorf("caching: SBS %d: caching: flow solve: %w", n, err)
		}
		for t := 0; t < in.T; t++ {
			dst := ws.plans[t][n]
			if net.items == nil {
				for k := 0; k < in.K; k++ {
					if g.Flow(net.hold[t][k]) > 0 {
						dst[k] = 1
					} else {
						dst[k] = 0
					}
				}
				continue
			}
			for k := range dst {
				dst[k] = 0
			}
			for ci, k := range net.items {
				if g.Flow(net.hold[t][ci]) > 0 {
					dst[k] = 1
				}
			}
		}
		net.obj = ws.objectiveSBS(n, rewards)
		net.solved = true
		total += net.obj
	}
	return ws.plans, total, nil
}

// objectiveSBS evaluates SBS n's P1 objective from its placement rows in
// ws.plans, replicating Subproblem.Objective's iteration order bit for
// bit. On a pruned network only candidate items are visited: excluded
// items carry placement 0, reward 0 and are never initially cached (the
// pruning contract), so their terms are exact zeros whose omission cannot
// change the float accumulation.
func (ws *Workspace) objectiveSBS(n int, rewards [][][]float64) float64 {
	in := ws.in
	beta := in.Beta[n]
	items := ws.nets[n].items
	var obj float64
	// The two accumulations per term are kept separate, exactly as in
	// Subproblem.Objective: fusing them would round differently.
	term := func(t, k int, row, cur []float64) {
		v := cur[k]
		prev := 0.0
		if t > 0 {
			prev = ws.plans[t-1][n][k]
		} else if ws.initial[n][k] >= 0.5 {
			prev = 1
		}
		if d := v - prev; d > 0 {
			obj += beta * d
		}
		obj -= row[k] * v
	}
	for t := 0; t < in.T; t++ {
		row := rewards[t][n]
		cur := ws.plans[t][n]
		if items == nil {
			for k := 0; k < in.K; k++ {
				term(t, k, row, cur)
			}
		} else {
			for _, k := range items {
				term(t, k, row, cur)
			}
		}
	}
	return obj
}
