package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// ErrCrash is the sentinel a durability operation returns after a
// DiskFaults injection put torn or corrupt bytes on disk: the process is
// considered dead at that byte. Callers must treat it as terminal —
// abandon the in-memory state and recover from disk, exactly as after a
// real SIGKILL. When DiskFaults.OnCrash is set it is invoked instead
// (the kill-loop harness wires it to os.Exit, so the simulated crash
// takes the whole process down before any acknowledgement escapes).
var ErrCrash = errors.New("fault: simulated crash after torn write")

// DiskFaults injects storage-level failures into the serving layer's
// durability files (DESIGN.md §14): a WAL append torn mid-frame, a
// snapshot generation published with only a byte prefix (the torn-rename
// / power-cut case), or a snapshot with a single flipped bit (silent
// media corruption). Operations are counted per kind; the fault fires on
// the configured 1-based operation index. Tear offsets and flipped bit
// positions are pure functions of (Seed, op count), so a chaos run
// replays byte-identically.
//
// Counters are atomics: the controller serialises durability operations,
// but the hooks stay safe under concurrent probing.
type DiskFaults struct {
	Seed uint64

	// TearWALAppend tears the Nth WAL append (1-based): only a strict
	// prefix of the frame reaches the file, then the crash fires. 0
	// disables.
	TearWALAppend int64
	// TearSnapshot tears the Nth snapshot publish: a strict prefix of
	// the envelope lands at the final path, then the crash fires.
	TearSnapshot int64
	// FlipSnapshot publishes the Nth snapshot with one bit flipped, then
	// fires the crash — the next startup must detect the corruption via
	// the envelope checksum and fall back a generation.
	FlipSnapshot int64

	// OnCrash, when set, is called instead of returning ErrCrash after
	// the faulty bytes are on disk; wiring it to os.Exit makes the
	// injected crash indistinguishable from kill -9 at that byte.
	OnCrash func()

	walAppends atomic.Int64
	snapSaves  atomic.Int64
}

// Crash fires the configured crash action (see OnCrash).
func (d *DiskFaults) Crash() error {
	if d.OnCrash != nil {
		d.OnCrash()
	}
	return ErrCrash
}

// WALTear advances the WAL append counter and reports whether this
// append must be torn, returning the number of frame bytes to keep
// (always a strict prefix: at least 1 byte short, possibly empty).
func (d *DiskFaults) WALTear(frameLen int) (keep int, tear bool) {
	if d == nil || d.TearWALAppend <= 0 {
		return 0, false
	}
	n := d.walAppends.Add(1)
	if n != d.TearWALAppend {
		return 0, false
	}
	if frameLen <= 1 {
		return 0, true
	}
	keep = int(uniform01(d.Seed, 0xD15C01, uint64(n)) * float64(frameLen))
	if keep >= frameLen {
		keep = frameLen - 1
	}
	return keep, true
}

// SnapshotFault advances the snapshot publish counter and, when this
// publish is the configured victim, returns the mutated bytes to put at
// the final path: a strict prefix (tear) or a copy with one bit flipped.
// crash reports whether the caller must fire Crash after writing them.
func (d *DiskFaults) SnapshotFault(data []byte) (mutated []byte, crash bool) {
	if d == nil || (d.TearSnapshot <= 0 && d.FlipSnapshot <= 0) {
		return nil, false
	}
	n := d.snapSaves.Add(1)
	switch {
	case n == d.TearSnapshot:
		keep := int(uniform01(d.Seed, 0xD15C02, uint64(n)) * float64(len(data)))
		if keep >= len(data) {
			keep = len(data) - 1
		}
		if keep < 0 {
			keep = 0
		}
		return append([]byte(nil), data[:keep]...), true
	case n == d.FlipSnapshot:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			i := int(uniform01(d.Seed, 0xD15C03, uint64(n)) * float64(len(out)))
			if i >= len(out) {
				i = len(out) - 1
			}
			bit := byte(1) << (splitmix64(d.Seed^uint64(n)) % 8)
			out[i] ^= bit
		}
		return out, true
	}
	return nil, false
}

// ParseDisk builds disk faults from the compact command-line DSL:
// clauses separated by ';', each 'kind:op=N' with 1-based operation
// indices:
//
//	tearwal:op=5     tear the 5th WAL append mid-frame, then crash
//	tearsnap:op=2    publish the 2nd snapshot as a byte prefix, then crash
//	flipsnap:op=3    flip one bit in the 3rd snapshot, then crash
//
// The seed drives the tear offsets and bit positions.
func ParseDisk(spec string, seed uint64) (*DiskFaults, error) {
	d := &DiskFaults{Seed: seed}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, _ := strings.Cut(clause, ":")
		var op int64
		if _, err := fmt.Sscanf(strings.TrimSpace(rest), "op=%d", &op); err != nil {
			return nil, fmt.Errorf("fault: disk clause %q: want kind:op=N: %w", clause, err)
		}
		if op <= 0 {
			return nil, fmt.Errorf("fault: disk clause %q: op = %d, want ≥ 1", clause, op)
		}
		switch strings.TrimSpace(kind) {
		case "tearwal":
			d.TearWALAppend = op
		case "tearsnap":
			d.TearSnapshot = op
		case "flipsnap":
			d.FlipSnapshot = op
		default:
			return nil, fmt.Errorf("fault: unknown disk clause kind %q (want tearwal|tearsnap|flipsnap)", kind)
		}
	}
	if d.TearWALAppend == 0 && d.TearSnapshot == 0 && d.FlipSnapshot == 0 {
		return nil, fmt.Errorf("fault: disk spec %q arms nothing", spec)
	}
	return d, nil
}
