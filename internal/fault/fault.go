// Package fault is a deterministic fault-injection subsystem for the
// edge-caching simulator: it perturbs a model.Instance with the failure
// modes a deployed controller must survive — SBS outages, backhaul
// bandwidth collapse, cache shrinkage (forced flush), corrupted demand
// predictions and solver-level errors/panics — without touching the
// paper's failure-free model.
//
// A Schedule is a seed plus a list of composable injectors. Topology
// injectors (Outage, BandwidthFactor, CapacityLoss, RandomOutages)
// materialise into a model.Overlay of slot-varying effective capacities
// B^t_n / C^t_n; the base instance is never mutated. Prediction
// corruption (Corruption) becomes a hook on workload.Predictor;
// solver-level faults (SolverFault) are armed and consumed by the online
// layer's per-slot solve loop.
//
// Everything is a pure function of the schedule seed: the same seed
// yields byte-identical overlays, corruption and trajectories, so every
// chaos run is replayable.
package fault

import (
	"fmt"
	"math"

	"edgecache/internal/model"
	"edgecache/internal/obs"
)

var mInjected = obs.Default.Counter("fault.injected")

// Injector is one fault clause of a schedule. Implementations are the
// concrete fault types in this package.
type Injector interface {
	// kind returns the DSL keyword naming the injector.
	kind() string
	// check validates the injector's parameters independent of any
	// instance (horizons are clamped at materialisation).
	check() error
}

// span clamps a [From, To) slot range to a horizon of T slots. To ≤ 0
// means "until the end of the horizon".
func span(from, to, T int) (int, int) {
	if to <= 0 || to > T {
		to = T
	}
	if from < 0 {
		from = 0
	}
	return from, to
}

func checkSpan(from, to int) error {
	if from < 0 {
		return fmt.Errorf("from = %d, want ≥ 0", from)
	}
	if to > 0 && to <= from {
		return fmt.Errorf("empty slot range [%d, %d)", from, to)
	}
	return nil
}

// Outage takes SBS (or every SBS, with SBS = -1) fully down over slots
// [From, To): zero effective bandwidth and zero effective cache
// capacity. To ≤ 0 means the SBS never recovers within the horizon.
type Outage struct {
	SBS      int
	From, To int
}

func (o Outage) kind() string { return "outage" }

func (o Outage) check() error {
	if o.SBS < -1 {
		return fmt.Errorf("outage: SBS = %d, want ≥ -1", o.SBS)
	}
	if err := checkSpan(o.From, o.To); err != nil {
		return fmt.Errorf("outage: %w", err)
	}
	return nil
}

// BandwidthFactor scales the effective bandwidth of SBS (or every SBS,
// with SBS = -1) by Factor ∈ [0, 1] over slots [From, To) — backhaul
// degradation or, at Factor = 0, a pure bandwidth collapse that leaves
// the cache intact.
type BandwidthFactor struct {
	SBS      int
	From, To int
	Factor   float64
}

func (b BandwidthFactor) kind() string { return "bw" }

func (b BandwidthFactor) check() error {
	if b.SBS < -1 {
		return fmt.Errorf("bw: SBS = %d, want ≥ -1", b.SBS)
	}
	if b.Factor < 0 || b.Factor > 1 || math.IsNaN(b.Factor) {
		return fmt.Errorf("bw: factor = %g, want [0, 1]", b.Factor)
	}
	if err := checkSpan(b.From, b.To); err != nil {
		return fmt.Errorf("bw: %w", err)
	}
	return nil
}

// CapacityLoss removes Lost items of effective cache capacity from SBS
// (or every SBS, with SBS = -1) over slots [From, To), clamped at zero.
// Lost ≥ C_n is a forced cache flush; the failure-aware controller must
// evict (and pay replacement cost to refill on recovery).
type CapacityLoss struct {
	SBS      int
	From, To int
	Lost     int
}

func (c CapacityLoss) kind() string { return "cap" }

func (c CapacityLoss) check() error {
	if c.SBS < -1 {
		return fmt.Errorf("cap: SBS = %d, want ≥ -1", c.SBS)
	}
	if c.Lost <= 0 {
		return fmt.Errorf("cap: lost = %d, want > 0", c.Lost)
	}
	if err := checkSpan(c.From, c.To); err != nil {
		return fmt.Errorf("cap: %w", err)
	}
	return nil
}

// RandomOutages sprinkles seed-driven outages across the horizon: each
// healthy (slot, SBS) pair independently begins an outage with
// probability Rate, lasting MeanLen slots in expectation (geometric).
// Expansion happens at materialisation and depends only on the schedule
// seed, so the same seed always yields the same outage pattern.
type RandomOutages struct {
	Rate    float64
	MeanLen int
}

func (r RandomOutages) kind() string { return "randoutage" }

func (r RandomOutages) check() error {
	if r.Rate <= 0 || r.Rate > 1 || math.IsNaN(r.Rate) {
		return fmt.Errorf("randoutage: rate = %g, want (0, 1]", r.Rate)
	}
	if r.MeanLen < 1 {
		return fmt.Errorf("randoutage: mean = %d, want ≥ 1", r.MeanLen)
	}
	return nil
}

// CorruptionMode selects how predictions are corrupted.
type CorruptionMode string

const (
	// Spike multiplies predicted rates by Magnitude — a flash-crowd
	// hallucination that baits the controller into over-caching.
	Spike CorruptionMode = "spike"
	// Dropout zeroes each predicted rate independently with probability
	// Rate — a feed that silently loses readings.
	Dropout CorruptionMode = "dropout"
	// Freeze replaces predictions for slots in [From, To) with the true
	// rates of slot From — a stale feed that stopped updating.
	Freeze CorruptionMode = "freeze"
)

// Corruption corrupts the demand predictions the online controllers
// consume over slots [From, To). It never touches the ground truth the
// simulator evaluates against — only the forecasts.
type Corruption struct {
	Mode     CorruptionMode
	From, To int
	// Magnitude is the spike multiplier (Spike mode only), > 1 inflates.
	Magnitude float64
	// Rate is the per-rate dropout probability (Dropout mode only).
	Rate float64
}

func (c Corruption) kind() string { return "corrupt" }

func (c Corruption) check() error {
	switch c.Mode {
	case Spike:
		if c.Magnitude <= 0 || math.IsNaN(c.Magnitude) || math.IsInf(c.Magnitude, 0) {
			return fmt.Errorf("corrupt: spike magnitude = %g, want finite > 0", c.Magnitude)
		}
	case Dropout:
		if c.Rate <= 0 || c.Rate > 1 || math.IsNaN(c.Rate) {
			return fmt.Errorf("corrupt: dropout rate = %g, want (0, 1]", c.Rate)
		}
	case Freeze:
	default:
		return fmt.Errorf("corrupt: unknown mode %q", c.Mode)
	}
	if err := checkSpan(c.From, c.To); err != nil {
		return fmt.Errorf("corrupt: %w", err)
	}
	return nil
}

// SolverFault injects a failure into the per-slot solve at decision
// slot Slot: the first Attempts solve attempts fail. With Panic false
// the failure is an injected error (exercising the retry/backoff path);
// with Panic true it is a worker panic (exercising the parallel
// supervisor). Attempts ≤ 0 defaults to 1, so a single retry recovers.
type SolverFault struct {
	Slot     int
	Panic    bool
	Attempts int
}

func (s SolverFault) kind() string {
	if s.Panic {
		return "panic"
	}
	return "solvererr"
}

func (s SolverFault) check() error {
	if s.Slot < 0 {
		return fmt.Errorf("%s: slot = %d, want ≥ 0", s.kind(), s.Slot)
	}
	return nil
}

// Schedule is a seed plus an ordered list of injectors — the complete,
// replayable description of one faulted world.
type Schedule struct {
	Seed      uint64
	Injectors []Injector
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Injectors) == 0 }

// Validate checks every injector's parameters.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, inj := range s.Injectors {
		if inj == nil {
			return fmt.Errorf("fault: injector %d is nil", i)
		}
		if err := inj.check(); err != nil {
			return fmt.Errorf("fault: injector %d: %w", i, err)
		}
	}
	return nil
}

// Materialize applies the schedule's topology injectors to in, returning
// a new instance that shares every base field (including the Demand
// pointer) and carries a model.Overlay of effective per-slot capacities.
// When the schedule has no topology injectors the instance is returned
// unchanged. Each materialised injector emits a fault_injected event on
// tel and bumps the fault.injected counter.
func (s *Schedule) Materialize(in *model.Instance, tel *obs.Telemetry) (*model.Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Empty() {
		return in, nil
	}
	bw := make([][]float64, in.T)
	cc := make([][]int, in.T)
	for t := 0; t < in.T; t++ {
		bw[t] = append([]float64(nil), in.Bandwidth...)
		cc[t] = append([]int(nil), in.CacheCap...)
	}
	apply := func(from, to, sbs int, f func(t, n int)) {
		from, to = span(from, to, in.T)
		for t := from; t < to; t++ {
			if sbs == -1 {
				for n := 0; n < in.N; n++ {
					f(t, n)
				}
			} else if sbs < in.N {
				f(t, sbs)
			}
		}
	}
	topology := 0
	for _, inj := range s.Injectors {
		switch v := inj.(type) {
		case Outage:
			if v.SBS >= in.N {
				return nil, fmt.Errorf("fault: outage names SBS %d, instance has %d", v.SBS, in.N)
			}
			apply(v.From, v.To, v.SBS, func(t, n int) { bw[t][n] = 0; cc[t][n] = 0 })
			topology++
		case BandwidthFactor:
			if v.SBS >= in.N {
				return nil, fmt.Errorf("fault: bw names SBS %d, instance has %d", v.SBS, in.N)
			}
			apply(v.From, v.To, v.SBS, func(t, n int) { bw[t][n] *= v.Factor })
			topology++
		case CapacityLoss:
			if v.SBS >= in.N {
				return nil, fmt.Errorf("fault: cap names SBS %d, instance has %d", v.SBS, in.N)
			}
			apply(v.From, v.To, v.SBS, func(t, n int) { cc[t][n] = max(0, cc[t][n]-v.Lost) })
			topology++
		case RandomOutages:
			for n := 0; n < in.N; n++ {
				for t := 0; t < in.T; {
					if uniform01(s.Seed, 0xFA01, uint64(n), uint64(t)) < v.Rate {
						// Geometric length with mean MeanLen.
						length := 1
						for length < in.T &&
							uniform01(s.Seed, 0xFA02, uint64(n), uint64(t), uint64(length)) < 1-1/float64(v.MeanLen) {
							length++
						}
						for e := t; e < min(t+length, in.T); e++ {
							bw[e][n] = 0
							cc[e][n] = 0
						}
						t += length
					} else {
						t++
					}
				}
			}
			topology++
		case Corruption, SolverFault:
			// Not topology: consumed by Corruptor / Arm.
		default:
			return nil, fmt.Errorf("fault: unknown injector type %T", inj)
		}
		mInjected.Inc()
		if tel.Enabled() {
			tel.Emit("fault_injected", obs.Fields{"kind": inj.kind(), "detail": fmt.Sprintf("%+v", inj)})
		}
	}
	if topology == 0 {
		return in, nil
	}
	out := *in
	out.Overlay = &model.Overlay{Bandwidth: bw, CacheCap: cc}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("fault: materialised instance invalid: %w", err)
	}
	return &out, nil
}

// Corruptor returns the prediction-corruption hook encoded by the
// schedule, suitable for workload.Predictor.WithCorruption, or nil when
// the schedule corrupts nothing. truth is the ground-truth demand (used
// by Freeze mode); the hook receives the decision time tau, the absolute
// slot t and the post-noise predicted rate, and returns the corrupted
// rate. The hook is a pure function of (seed, tau, t, n, m, k), so
// corruption replays identically for the same schedule.
func (s *Schedule) Corruptor(truth model.DemandView) func(tau, t, n, m, k int, v float64) float64 {
	if s.Empty() {
		return nil
	}
	var cs []Corruption
	for _, inj := range s.Injectors {
		if c, ok := inj.(Corruption); ok {
			cs = append(cs, c)
		}
	}
	if len(cs) == 0 {
		return nil
	}
	seed := s.Seed
	return func(tau, t, n, m, k int, v float64) float64 {
		for _, c := range cs {
			from, to := c.From, c.To
			if to <= 0 {
				to = math.MaxInt
			}
			if t < from || t >= to {
				continue
			}
			switch c.Mode {
			case Spike:
				v *= c.Magnitude
			case Dropout:
				if uniform01(seed, 0xFA03, uint64(tau), uint64(t), uint64(n), uint64(m), uint64(k)) < c.Rate {
					v = 0
				}
			case Freeze:
				v = truth.At(from, n, m, k)
			}
		}
		return v
	}
}

// uniform01 hashes its arguments into a deterministic uniform [0, 1)
// variate via splitmix64 finalisation (same construction as package
// workload's prediction noise).
func uniform01(parts ...uint64) float64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix64(h)
	}
	return float64(h>>11) / float64(1<<53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
