package fault

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"edgecache/internal/model"
	"edgecache/internal/obs"
)

// testInstance: 2 SBSs, 2 contents, 4 slots, one class each.
func testInstance(t *testing.T) *model.Instance {
	t.Helper()
	d := model.NewDemand(4, []int{1, 1}, 2)
	for tt := 0; tt < 4; tt++ {
		for n := 0; n < 2; n++ {
			for k := 0; k < 2; k++ {
				d.Set(tt, n, 0, k, float64(tt+k+1))
			}
		}
	}
	in := &model.Instance{
		N: 2, K: 2, T: 4,
		Classes:   []int{1, 1},
		CacheCap:  []int{2, 2},
		Bandwidth: []float64{8, 8},
		OmegaBS:   [][]float64{{1}, {1}},
		OmegaSBS:  [][]float64{{0}, {0}},
		Beta:      []float64{1, 1},
		Demand:    d,
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("testInstance: %v", err)
	}
	return in
}

func TestMaterializeOutage(t *testing.T) {
	in := testInstance(t)
	s := &Schedule{Injectors: []Injector{Outage{SBS: 0, From: 1, To: 3}}}
	out, err := s.Materialize(in, nil)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if out == in {
		t.Fatal("Materialize returned the base instance for a topology schedule")
	}
	if out.Demand != in.Demand {
		t.Error("Materialize copied the demand tensor; must share the pointer")
	}
	if in.Overlay != nil {
		t.Error("Materialize mutated the base instance")
	}
	for _, tc := range []struct {
		t, n  int
		bw    float64
		cache int
	}{
		{0, 0, 8, 2}, {1, 0, 0, 0}, {2, 0, 0, 0}, {3, 0, 8, 2},
		{1, 1, 8, 2},
	} {
		if got := out.BandwidthAt(tc.t, tc.n); got != tc.bw {
			t.Errorf("BandwidthAt(%d,%d) = %g, want %g", tc.t, tc.n, got, tc.bw)
		}
		if got := out.CacheCapAt(tc.t, tc.n); got != tc.cache {
			t.Errorf("CacheCapAt(%d,%d) = %d, want %d", tc.t, tc.n, got, tc.cache)
		}
	}
	if !out.OutageAt(1, 0) || out.OutageAt(1, 1) {
		t.Error("OutageAt disagrees with the injected outage")
	}
	if got := out.EventSlots(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("EventSlots() = %v, want [1 3]", got)
	}
}

func TestMaterializeComposition(t *testing.T) {
	in := testInstance(t)
	s := &Schedule{Injectors: []Injector{
		BandwidthFactor{SBS: -1, From: 0, Factor: 0.5}, // halve everyone, whole horizon
		CapacityLoss{SBS: 1, From: 2, Lost: 5},         // over-loss clamps to 0 (forced flush)
	}}
	out, err := s.Materialize(in, nil)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got := out.BandwidthAt(3, 1); got != 4 {
		t.Errorf("BandwidthAt(3,1) = %g, want 4", got)
	}
	if got := out.CacheCapAt(3, 1); got != 0 {
		t.Errorf("CacheCapAt(3,1) = %d, want 0 (clamped)", got)
	}
	if got := out.CacheCapAt(1, 1); got != 2 {
		t.Errorf("CacheCapAt(1,1) = %d, want 2 (before loss)", got)
	}
}

func TestMaterializeNoTopology(t *testing.T) {
	in := testInstance(t)
	s := &Schedule{Injectors: []Injector{
		Corruption{Mode: Spike, Magnitude: 3},
		SolverFault{Slot: 1},
	}}
	out, err := s.Materialize(in, nil)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if out != in {
		t.Error("schedule without topology faults must return the instance unchanged")
	}
}

func TestMaterializeDeterministicRandomOutages(t *testing.T) {
	in := testInstance(t)
	mk := func(seed uint64) *model.Instance {
		s := &Schedule{Seed: seed, Injectors: []Injector{RandomOutages{Rate: 0.4, MeanLen: 2}}}
		out, err := s.Materialize(in, nil)
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		return out
	}
	a, b := mk(7), mk(7)
	if !reflect.DeepEqual(a.Overlay, b.Overlay) {
		t.Error("same seed produced different overlays")
	}
	// A different seed should (for this rate) produce a different pattern;
	// scan a few seeds to avoid flakiness on coincidental equality.
	distinct := false
	for seed := uint64(1); seed <= 8; seed++ {
		if !reflect.DeepEqual(a.Overlay, mk(seed).Overlay) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("8 different seeds all produced the seed-7 overlay; RNG looks degenerate")
	}
}

func TestMaterializeEmitsTelemetry(t *testing.T) {
	in := testInstance(t)
	col := &obs.Collector{}
	reg := obs.NewRegistry()
	tel := obs.New(col, reg)
	s := &Schedule{Injectors: []Injector{
		Outage{SBS: 0, From: 1, To: 2},
		Corruption{Mode: Freeze, From: 1},
	}}
	if _, err := s.Materialize(in, tel); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	evs := col.ByType("fault_injected")
	if len(evs) != 2 {
		t.Fatalf("got %d fault_injected events, want 2", len(evs))
	}
	if evs[0].Fields["kind"] != "outage" || evs[1].Fields["kind"] != "corrupt" {
		t.Errorf("event kinds = %v, %v", evs[0].Fields["kind"], evs[1].Fields["kind"])
	}
}

func TestCorruptor(t *testing.T) {
	in := testInstance(t)
	s := &Schedule{Seed: 3, Injectors: []Injector{
		Corruption{Mode: Spike, From: 1, To: 3, Magnitude: 10},
	}}
	hook := s.Corruptor(in.Demand)
	if hook == nil {
		t.Fatal("Corruptor = nil for a corrupting schedule")
	}
	if got := hook(0, 0, 0, 0, 0, 2); got != 2 {
		t.Errorf("outside window: hook = %g, want 2", got)
	}
	if got := hook(0, 2, 0, 0, 0, 2); got != 20 {
		t.Errorf("spike: hook = %g, want 20", got)
	}
	// Freeze returns the truth at the freeze slot.
	fz := (&Schedule{Injectors: []Injector{Corruption{Mode: Freeze, From: 1}}}).Corruptor(in.Demand)
	if got := fz(0, 3, 1, 0, 1, 99); got != in.Demand.At(1, 1, 0, 1) {
		t.Errorf("freeze: hook = %g, want truth %g", got, in.Demand.At(1, 1, 0, 1))
	}
	// Dropout is deterministic in (seed, tau, t, n, m, k) and hits roughly
	// its rate.
	dp := (&Schedule{Seed: 5, Injectors: []Injector{Corruption{Mode: Dropout, Rate: 0.5}}}).Corruptor(in.Demand)
	zeros := 0
	for i := 0; i < 1000; i++ {
		a := dp(0, i, 0, 0, 0, 1)
		if a != dp(0, i, 0, 0, 0, 1) {
			t.Fatal("dropout is nondeterministic")
		}
		if a == 0 {
			zeros++
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropout rate ≈ %d/1000, want ≈ 500", zeros)
	}
	// Schedules without corruption yield a nil hook.
	if h := (&Schedule{Injectors: []Injector{Outage{SBS: 0}}}).Corruptor(in.Demand); h != nil {
		t.Error("Corruptor != nil for a topology-only schedule")
	}
}

func TestArmInject(t *testing.T) {
	s := &Schedule{Injectors: []Injector{
		SolverFault{Slot: 2},
		SolverFault{Slot: 5, Panic: true, Attempts: 2},
	}}
	a := s.Arm()
	if a == nil {
		t.Fatal("Arm = nil for a schedule with solver faults")
	}
	if err, p := a.Inject(0); err != nil || p {
		t.Error("Inject(0) fired on an unfaulted slot")
	}
	err, p := a.Inject(2)
	if err == nil || p {
		t.Fatalf("Inject(2) = (%v, %v), want injected error", err, p)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error %v does not wrap ErrInjected", err)
	}
	if err, _ := a.Inject(2); err != nil {
		t.Error("Inject(2) fired twice with a 1-attempt budget")
	}
	for i := 0; i < 2; i++ {
		if err, p := a.Inject(5); err != nil || !p {
			t.Fatalf("Inject(5) attempt %d = (%v, %v), want panic", i, err, p)
		}
	}
	if _, p := a.Inject(5); p {
		t.Error("Inject(5) fired a third time with a 2-attempt budget")
	}
	// Nil-safety and no-fault schedules.
	var nilArmed *Armed
	if err, p := nilArmed.Inject(0); err != nil || p {
		t.Error("nil Armed injected")
	}
	if a := (&Schedule{Injectors: []Injector{Outage{SBS: 0}}}).Arm(); a != nil {
		t.Error("Arm != nil for a schedule without solver faults")
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse("outage:n=1,from=10,to=20; bw:n=-1,from=5,factor=0.25; cap:n=0,from=2,to=4,lose=1; randoutage:rate=0.02,mean=3; corrupt:mode=spike,from=3,to=8,mag=5; corrupt:mode=dropout,rate=0.5; solvererr:t=7; panic:t=9,attempts=2")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Injector{
		Outage{SBS: 1, From: 10, To: 20},
		BandwidthFactor{SBS: -1, From: 5, Factor: 0.25},
		CapacityLoss{SBS: 0, From: 2, To: 4, Lost: 1},
		RandomOutages{Rate: 0.02, MeanLen: 3},
		Corruption{Mode: Spike, From: 3, To: 8, Magnitude: 5},
		Corruption{Mode: Dropout, Rate: 0.5},
		SolverFault{Slot: 7},
		SolverFault{Slot: 9, Panic: true, Attempts: 2},
	}
	if !reflect.DeepEqual(s.Injectors, want) {
		t.Errorf("Parse = %+v,\nwant %+v", s.Injectors, want)
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"meteor:n=1",                  // unknown kind
		"outage:n=1,frm=2",            // unknown key
		"outage:n=1,from",             // not key=val
		"outage:from=3,to=2",          // empty range
		"bw:factor=1.5",               // factor out of range
		"cap:n=0,lose=0",              // nothing lost
		"corrupt:mode=mangle",         // unknown mode
		"corrupt:mode=dropout,rate=0", // zero rate
		"randoutage:rate=0.5,mean=0",  // degenerate mean
		"solvererr:t=-1",              // negative slot (default)
		"outage:n=abc",                // non-numeric
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = nil error, want rejection", spec)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	blob := `{
	  "seed": 11,
	  "faults": [
	    {"kind": "outage", "sbs": 1, "from": 10, "to": 20},
	    {"kind": "bw", "from": 5, "factor": 0.25},
	    {"kind": "corrupt", "mode": "freeze", "from": 6},
	    {"kind": "panic", "t": 7}
	  ]
	}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Seed != 11 {
		t.Errorf("seed = %d, want 11", s.Seed)
	}
	want := []Injector{
		Outage{SBS: 1, From: 10, To: 20},
		BandwidthFactor{SBS: -1, From: 5, Factor: 0.25},
		Corruption{Mode: Freeze, From: 6},
		SolverFault{Slot: 7, Panic: true},
	}
	if !reflect.DeepEqual(s.Injectors, want) {
		t.Errorf("Load = %+v,\nwant %+v", s.Injectors, want)
	}
	// FromSpec resolves files, @files and inline DSL; seed override wins.
	for _, arg := range []string{path, "@" + path} {
		s, err := FromSpec(arg, 99)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", arg, err)
		}
		if s.Seed != 99 {
			t.Errorf("FromSpec(%q) seed = %d, want override 99", arg, s.Seed)
		}
	}
	inline, err := FromSpec("outage:n=0,from=1,to=2", 42)
	if err != nil {
		t.Fatalf("FromSpec inline: %v", err)
	}
	if inline.Seed != 42 || len(inline.Injectors) != 1 {
		t.Errorf("FromSpec inline = seed %d, %d injectors", inline.Seed, len(inline.Injectors))
	}
}

func TestMaterializeRejectsBadSBS(t *testing.T) {
	in := testInstance(t)
	s := &Schedule{Injectors: []Injector{Outage{SBS: 5}}}
	if _, err := s.Materialize(in, nil); err == nil {
		t.Error("Materialize accepted an outage on a nonexistent SBS")
	}
}
