package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Parse builds a schedule from the compact command-line DSL: clauses
// separated by ';', each 'kind:key=val,key=val'. Kinds and keys:
//
//	outage:n=1,from=10,to=20        SBS 1 fully down over [10, 20)
//	bw:n=-1,from=5,factor=0.25      every SBS at quarter bandwidth from slot 5 on
//	cap:n=2,from=4,to=9,lose=3      SBS 2 loses 3 cache slots over [4, 9)
//	randoutage:rate=0.02,mean=3     seed-driven random outages
//	corrupt:mode=spike,from=3,to=8,mag=5
//	corrupt:mode=dropout,rate=0.5   (over the whole horizon when from/to absent)
//	corrupt:mode=freeze,from=6
//	solvererr:t=7                   injected error on the first solve attempt at slot 7
//	panic:t=7,attempts=2            worker panic on the first two attempts at slot 7
//
// 'n=-1' targets every SBS; omitted 'to' (or to=0) extends to the end of
// the horizon. The seed is supplied separately (flag -fault-seed).
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, _ := strings.Cut(clause, ":")
		kind = strings.TrimSpace(kind)
		kv := map[string]string{}
		if rest != "" {
			for _, pair := range strings.Split(rest, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					return nil, fmt.Errorf("fault: clause %q: %q is not key=val", clause, pair)
				}
				kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
			}
		}
		geti := func(key string, def int) (int, error) {
			v, ok := kv[key]
			if !ok {
				return def, nil
			}
			delete(kv, key)
			return strconv.Atoi(v)
		}
		getf := func(key string, def float64) (float64, error) {
			v, ok := kv[key]
			if !ok {
				return def, nil
			}
			delete(kv, key)
			return strconv.ParseFloat(v, 64)
		}
		var inj Injector
		var err error
		switch kind {
		case "outage":
			var o Outage
			if o.SBS, err = geti("n", -1); err == nil {
				if o.From, err = geti("from", 0); err == nil {
					o.To, err = geti("to", 0)
				}
			}
			inj = o
		case "bw":
			var b BandwidthFactor
			if b.SBS, err = geti("n", -1); err == nil {
				if b.From, err = geti("from", 0); err == nil {
					if b.To, err = geti("to", 0); err == nil {
						b.Factor, err = getf("factor", 0)
					}
				}
			}
			inj = b
		case "cap":
			var c CapacityLoss
			if c.SBS, err = geti("n", -1); err == nil {
				if c.From, err = geti("from", 0); err == nil {
					if c.To, err = geti("to", 0); err == nil {
						c.Lost, err = geti("lose", 0)
					}
				}
			}
			inj = c
		case "randoutage":
			var r RandomOutages
			if r.Rate, err = getf("rate", 0); err == nil {
				r.MeanLen, err = geti("mean", 1)
			}
			inj = r
		case "corrupt":
			var c Corruption
			c.Mode = CorruptionMode(kv["mode"])
			delete(kv, "mode")
			if c.From, err = geti("from", 0); err == nil {
				if c.To, err = geti("to", 0); err == nil {
					if c.Magnitude, err = getf("mag", 0); err == nil {
						c.Rate, err = getf("rate", 0)
					}
				}
			}
			inj = c
		case "solvererr", "panic":
			var sf SolverFault
			sf.Panic = kind == "panic"
			if sf.Slot, err = geti("t", -1); err == nil {
				sf.Attempts, err = geti("attempts", 0)
			}
			inj = sf
		default:
			return nil, fmt.Errorf("fault: unknown clause kind %q (want outage|bw|cap|randoutage|corrupt|solvererr|panic)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		for k := range kv {
			return nil, fmt.Errorf("fault: clause %q: unknown key %q", clause, k)
		}
		s.Injectors = append(s.Injectors, inj)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// scheduleJSON is the on-disk schedule format: a seed plus a flat list
// of fault objects discriminated by "kind".
type scheduleJSON struct {
	Seed   uint64      `json:"seed"`
	Faults []faultJSON `json:"faults"`
}

type faultJSON struct {
	Kind      string  `json:"kind"`
	SBS       *int    `json:"sbs,omitempty"`
	From      int     `json:"from,omitempty"`
	To        int     `json:"to,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	Lost      int     `json:"lose,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	MeanLen   int     `json:"mean,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	Magnitude float64 `json:"mag,omitempty"`
	Slot      int     `json:"t,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
}

// Load reads a JSON schedule file (see scheduleJSON for the format).
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	var sj scheduleJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	s := &Schedule{Seed: sj.Seed}
	for i, fj := range sj.Faults {
		sbs := -1
		if fj.SBS != nil {
			sbs = *fj.SBS
		}
		var inj Injector
		switch fj.Kind {
		case "outage":
			inj = Outage{SBS: sbs, From: fj.From, To: fj.To}
		case "bw":
			inj = BandwidthFactor{SBS: sbs, From: fj.From, To: fj.To, Factor: fj.Factor}
		case "cap":
			inj = CapacityLoss{SBS: sbs, From: fj.From, To: fj.To, Lost: fj.Lost}
		case "randoutage":
			inj = RandomOutages{Rate: fj.Rate, MeanLen: fj.MeanLen}
		case "corrupt":
			inj = Corruption{Mode: CorruptionMode(fj.Mode), From: fj.From, To: fj.To, Magnitude: fj.Magnitude, Rate: fj.Rate}
		case "solvererr":
			inj = SolverFault{Slot: fj.Slot, Attempts: fj.Attempts}
		case "panic":
			inj = SolverFault{Slot: fj.Slot, Panic: true, Attempts: fj.Attempts}
		default:
			return nil, fmt.Errorf("fault: %s: fault %d has unknown kind %q", path, i, fj.Kind)
		}
		s.Injectors = append(s.Injectors, inj)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return s, nil
}

// FromSpec resolves a command-line -faults argument: "@path" or a path
// ending in ".json" loads a JSON schedule file; anything else is parsed
// as the inline DSL. seed, when non-zero, overrides the schedule's seed
// (the -fault-seed flag).
func FromSpec(arg string, seed uint64) (*Schedule, error) {
	var s *Schedule
	var err error
	switch {
	case strings.HasPrefix(arg, "@"):
		s, err = Load(strings.TrimPrefix(arg, "@"))
	case strings.HasSuffix(arg, ".json"):
		s, err = Load(arg)
	default:
		s, err = Parse(arg)
	}
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		s.Seed = seed
	}
	return s, nil
}
