package fault

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected solver error, so
// callers (and tests) can identify synthetic failures with errors.Is.
var ErrInjected = errors.New("fault: injected solver error")

// Armed is the runtime state of a schedule's solver faults: per-slot
// attempt budgets consumed by the online layer as it solves. Arm a fresh
// one per run — Armed is stateful where Schedule is not.
type Armed struct {
	mu      sync.Mutex
	pending map[int]*armedFault
}

type armedFault struct {
	remaining int
	panics    bool
}

// Arm compiles the schedule's SolverFault injectors into a consumable
// runtime state. Returns nil when the schedule injects no solver faults,
// so callers can branch on a single nil check in the hot path.
func (s *Schedule) Arm() *Armed {
	if s.Empty() {
		return nil
	}
	var pending map[int]*armedFault
	for _, inj := range s.Injectors {
		sf, ok := inj.(SolverFault)
		if !ok {
			continue
		}
		if pending == nil {
			pending = make(map[int]*armedFault)
		}
		attempts := sf.Attempts
		if attempts <= 0 {
			attempts = 1
		}
		pending[sf.Slot] = &armedFault{remaining: attempts, panics: sf.Panic}
	}
	if pending == nil {
		return nil
	}
	return &Armed{pending: pending}
}

// Snapshot returns the remaining per-slot attempt budgets — the mutable
// state of an armed schedule, which a controller snapshot must carry so a
// restored run does not re-inject faults the interrupted run already
// consumed. Nil-safe: a nil Armed snapshots to nil.
func (a *Armed) Snapshot() map[int]int {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]int, len(a.pending))
	for slot, f := range a.pending {
		out[slot] = f.remaining
	}
	return out
}

// Restore overwrites the remaining attempt budgets with a snapshot taken
// from an Armed of the same schedule. Slots absent from the snapshot keep
// their armed budget. Nil-safe on both sides.
func (a *Armed) Restore(budgets map[int]int) {
	if a == nil || budgets == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for slot, remaining := range budgets {
		if f := a.pending[slot]; f != nil {
			f.remaining = remaining
		}
	}
}

// Inject consumes one failure budget for a solve attempt at decision
// slot tau. It returns (nil, false) when the attempt should proceed
// normally, (err, false) when the attempt must fail with the injected
// error, and (nil, true) when the attempt must fail by panicking in its
// worker. Nil-safe: a nil Armed never injects.
func (a *Armed) Inject(tau int) (error, bool) {
	if a == nil {
		return nil, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	f := a.pending[tau]
	if f == nil || f.remaining == 0 {
		return nil, false
	}
	f.remaining--
	if f.panics {
		return nil, true
	}
	return fmt.Errorf("%w at slot %d", ErrInjected, tau), false
}
