package sim

import (
	"context"
	"reflect"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

// equivSetup builds one sparse-backed instance and its dense twin holding
// bit-identical demand values, with predictors sharing the same noise
// stream (the noise is a pure function of coordinates, so the backing
// cannot leak into it).
func equivSetup(t *testing.T) (sparse, dense *model.Instance, predS, predD *workload.Predictor) {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.N = 2
	cfg.T = 8
	cfg.K = 20
	cfg.ClassesPerSBS = 3
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Beta = 5
	inS, err := workload.BuildInstanceWith(cfg, workload.WithSparse(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inS.Demand.(*model.SparseDemand); !ok {
		t.Fatalf("sparse instance carries %T", inS.Demand)
	}
	inDCopy := *inS
	inDCopy.Demand = model.Densify(inS.Demand)
	inD := &inDCopy
	pS, err := workload.NewPredictor(inS.Demand, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pD, err := workload.NewPredictor(inD.Demand, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return inS, inD, pS, pD
}

// TestSimulateDenseSparseEquivalence is the differential acceptance test
// of the DemandView redesign: an end-to-end simulation must commit
// DeepEqual-identical trajectories whether the demand sits in the dense
// tensor or the sparse representation. Every solver layer is on the line
// here — candidate pruning in P1, the compact active-coordinate P2
// planes, the window slicing of the online controllers and the
// ForEachActive cost accumulation — because a single reordered float64
// operation would surface as a bitwise diff.
func TestSimulateDenseSparseEquivalence(t *testing.T) {
	inS, inD, predS, predD := equivSetup(t)
	policies := map[string]Policy{
		"offline": Offline(core.Options{MaxIter: 25}),
		"rhc":     Online(online.RHC(4)),
		"chc":     Online(online.CHC(4, 2)),
	}
	for name, pol := range policies {
		t.Run(name, func(t *testing.T) {
			rs, err := Run(context.Background(), inS, predS, pol)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := Run(context.Background(), inD, predD, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rs.Trajectory, rd.Trajectory) {
				t.Fatal("sparse and dense runs committed different trajectories")
			}
			if rs.Cost != rd.Cost {
				t.Fatalf("cost breakdowns diverge: sparse %+v dense %+v", rs.Cost, rd.Cost)
			}
			if !reflect.DeepEqual(rs.PerSlot, rd.PerSlot) {
				t.Fatal("per-slot metrics diverge")
			}
		})
	}
}

// TestSimulateDenseSparseEquivalenceFaulted repeats the differential run
// under instance faults (an outage plus a bandwidth degradation). These
// act on capacities and bandwidths — never on demand — so they must
// preserve the equivalence; demand-corrupting fault modes that resurrect
// zero-rate coordinates (freeze) are deliberately outside the sparse
// contract (see model.DemandView.Map) and outside this test.
func TestSimulateDenseSparseEquivalenceFaulted(t *testing.T) {
	inS, inD, predS, predD := equivSetup(t)
	mkSchedule := func() *fault.Schedule {
		return &fault.Schedule{Injectors: []fault.Injector{
			fault.Outage{SBS: 0, From: 2, To: 5},
			fault.BandwidthFactor{SBS: 1, From: 4, To: 8, Factor: 0.5},
		}}
	}
	cfgRun := Config{Audit: true}
	cfgRun.Faults = mkSchedule()
	rs, err := RunWith(context.Background(), inS, predS, Online(online.RHC(4)), cfgRun)
	if err != nil {
		t.Fatal(err)
	}
	cfgRun.Faults = mkSchedule()
	rd, err := RunWith(context.Background(), inD, predD, Online(online.RHC(4)), cfgRun)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Audit.Err(); err != nil {
		t.Fatalf("sparse faulted run failed audit: %v", err)
	}
	if err := rd.Audit.Err(); err != nil {
		t.Fatalf("dense faulted run failed audit: %v", err)
	}
	if !reflect.DeepEqual(rs.Trajectory, rd.Trajectory) {
		t.Fatal("faulted sparse and dense runs committed different trajectories")
	}
	if rs.Cost != rd.Cost {
		t.Fatalf("faulted cost breakdowns diverge: sparse %+v dense %+v", rs.Cost, rd.Cost)
	}
}
