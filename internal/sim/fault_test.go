package sim

import (
	"context"
	"errors"
	"testing"

	"edgecache/internal/baseline"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

func TestRunWithFaultsEndToEnd(t *testing.T) {
	in, pred := testSetup(t)
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.Outage{SBS: 0, From: 3, To: 5},
	}}
	res, err := RunWith(context.Background(), in, pred, Online(online.RHC(4)),
		Config{Faults: s, Audit: true})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if err := res.Audit.Err(); err != nil {
		t.Fatalf("audit of faulted run: %v", err)
	}
	for tt := 3; tt < 5; tt++ {
		if got := len(res.Trajectory[tt].X.Items(0)); got != 0 {
			t.Errorf("slot %d: %d items cached on dead SBS", tt, got)
		}
	}
	// The schedule is materialised into a copy; the caller's instance
	// must stay failure-free.
	if in.Overlay != nil {
		t.Error("base instance gained an overlay")
	}
}

func TestRunWithFaultsBaseline(t *testing.T) {
	// Baselines are not FaultAware but still plan against the effective
	// instance, so they too must survive an outage and audit clean.
	in, pred := testSetup(t)
	s := &fault.Schedule{Injectors: []fault.Injector{
		fault.Outage{SBS: 0, From: 2, To: 6},
	}}
	res, err := RunWith(context.Background(), in, pred, FromBaseline(baseline.NewLRFU()),
		Config{Faults: s, Audit: true})
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if err := res.Audit.Err(); err != nil {
		t.Fatalf("audit of faulted baseline run: %v", err)
	}
}

// failingPolicy aborts mid-plan: a cancellation-shaped error when the
// context is done, a solver-shaped error otherwise.
type failingPolicy struct{}

func (failingPolicy) Name() string { return "failing" }

func (failingPolicy) Plan(ctx context.Context, in *model.Instance, pred workload.Forecaster) (model.Trajectory, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("solver exploded at slot 3")
}

func TestRunSummaryEmittedOnPlanError(t *testing.T) {
	in, pred := testSetup(t)

	t.Run("solver error", func(t *testing.T) {
		col := &obs.Collector{}
		tel := obs.New(col, obs.NewRegistry())
		_, err := RunWith(context.Background(), in, pred, failingPolicy{}, Config{Telemetry: tel})
		if err == nil {
			t.Fatal("failing policy returned nil error")
		}
		evs := col.ByType("run_summary")
		if len(evs) != 1 {
			t.Fatalf("got %d run_summary events, want 1", len(evs))
		}
		f := evs[0].Fields
		if msg, _ := f["error"].(string); msg == "" {
			t.Error("run_summary has no error field")
		}
		if cancelled, _ := f["cancelled"].(bool); cancelled {
			t.Error("run_summary marked cancelled on a plain solver error")
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		col := &obs.Collector{}
		tel := obs.New(col, obs.NewRegistry())
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunWith(ctx, in, pred, failingPolicy{}, Config{Telemetry: tel})
		if err == nil {
			t.Fatal("cancelled run returned nil error")
		}
		evs := col.ByType("run_summary")
		if len(evs) != 1 {
			t.Fatalf("got %d run_summary events, want 1", len(evs))
		}
		if cancelled, _ := evs[0].Fields["cancelled"].(bool); !cancelled {
			t.Error("run_summary not marked cancelled under a cancelled context")
		}
	})
}

func TestRunWithFaultsDeterministic(t *testing.T) {
	// The whole pipeline — materialisation, corrupted predictor, online
	// control — must be a pure function of (instance seed, fault seed).
	mk := func() *Result {
		in, pred := testSetup(t)
		s := &fault.Schedule{Seed: 11, Injectors: []fault.Injector{
			fault.RandomOutages{Rate: 0.05, MeanLen: 2},
			fault.Corruption{Mode: fault.Dropout, From: 0, To: 8, Rate: 0.2},
		}}
		res, err := RunWith(context.Background(), in, pred, Online(online.CHC(4, 2)),
			Config{Faults: s, Audit: true})
		if err != nil {
			t.Fatalf("RunWith: %v", err)
		}
		if err := res.Audit.Err(); err != nil {
			t.Fatalf("audit: %v", err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Cost.Total != b.Cost.Total || a.Cost.Replacements != b.Cost.Replacements {
		t.Errorf("same seeds, different costs: %+v vs %+v", a.Cost, b.Cost)
	}
}
