package sim

import (
	"context"
	"reflect"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/online"
)

// incrementalPolicyPairs enumerates (delta-aware, from-scratch) policy
// pairs that must simulate identically: the same controller with the
// incremental machinery on versus ablated (core.Options.DisableIncremental),
// holding every accuracy-level knob — μ warm start, iterate warm start —
// equal within each pair. The iterate warm start is exercised both on
// (the online default) and off, because it changes which cross-window
// state exists for the delta machinery to reuse.
func incrementalPolicyPairs() map[string][2]Policy {
	pairs := map[string][2]Policy{
		"offline": {
			Offline(core.Options{MaxIter: 25}),
			Offline(core.Options{MaxIter: 25, DisableIncremental: true}),
		},
	}
	for name, mk := range map[string]func() online.Config{
		"rhc": func() online.Config { return online.RHC(4) },
		"chc": func() online.Config { return online.CHC(4, 2) },
	} {
		for suffix, noCarry := range map[string]bool{"": false, "_nocarry": true} {
			cfg := mk()
			cfg.DisableIterateWarmStart = noCarry
			ref := cfg
			ref.Core.DisableIncremental = true
			pairs[name+suffix] = [2]Policy{Online(cfg), Online(ref)}
		}
	}
	return pairs
}

// TestSimulateIncrementalEquivalence is the differential acceptance test
// of the delta-aware re-solve machinery: end-to-end simulations must
// commit DeepEqual-identical trajectories with the incremental paths on
// or ablated, on both dense and sparse demand backings. Every delta layer
// is on the line — the mcflow Resolve keep/repair certificate, the P1
// dirty-row scheduling and SBS skips, the P2 fixed-point slot skips, the
// μ-row change tracking in the dual loop and the cross-window coefficient
// rotation — because a single stale or reordered float64 would surface as
// a bitwise diff.
func TestSimulateIncrementalEquivalence(t *testing.T) {
	inS, inD, predS, predD := equivSetup(t)
	for name, pair := range incrementalPolicyPairs() {
		t.Run(name, func(t *testing.T) {
			for backing, run := range map[string]func(Policy) (*Result, error){
				"sparse": func(p Policy) (*Result, error) { return Run(context.Background(), inS, predS, p) },
				"dense":  func(p Policy) (*Result, error) { return Run(context.Background(), inD, predD, p) },
			} {
				inc, err := run(pair[0])
				if err != nil {
					t.Fatalf("%s incremental run: %v", backing, err)
				}
				ref, err := run(pair[1])
				if err != nil {
					t.Fatalf("%s from-scratch run: %v", backing, err)
				}
				if !reflect.DeepEqual(inc.Trajectory, ref.Trajectory) {
					t.Fatalf("%s: incremental and from-scratch runs committed different trajectories", backing)
				}
				if inc.Cost != ref.Cost {
					t.Fatalf("%s: cost breakdowns diverge: incremental %+v from-scratch %+v", backing, inc.Cost, ref.Cost)
				}
				if !reflect.DeepEqual(inc.PerSlot, ref.PerSlot) {
					t.Fatalf("%s: per-slot metrics diverge", backing)
				}
			}
		})
	}
}

// TestSimulateIncrementalEquivalenceFaulted repeats the differential run
// under instance faults (an outage plus a bandwidth degradation): event
// replans truncate commitments at irregular boundaries, driving the
// cross-window Advance hint through non-uniform shifts, and the overlay
// flips capacities mid-horizon — none of which may break the incremental
// paths' bit-exactness.
func TestSimulateIncrementalEquivalenceFaulted(t *testing.T) {
	inS, _, predS, _ := equivSetup(t)
	mkSchedule := func() *fault.Schedule {
		return &fault.Schedule{Injectors: []fault.Injector{
			fault.Outage{SBS: 0, From: 2, To: 5},
			fault.BandwidthFactor{SBS: 1, From: 4, To: 8, Factor: 0.5},
		}}
	}
	run := func(p Policy) *Result {
		t.Helper()
		cfgRun := Config{Audit: true}
		cfgRun.Faults = mkSchedule()
		r, err := RunWith(context.Background(), inS, predS, p, cfgRun)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Audit.Err(); err != nil {
			t.Fatalf("faulted run failed audit: %v", err)
		}
		return r
	}
	cfg := online.RHC(4)
	ref := cfg
	ref.Core.DisableIncremental = true
	inc, base := run(Online(cfg)), run(Online(ref))
	if !reflect.DeepEqual(inc.Trajectory, base.Trajectory) {
		t.Fatal("faulted incremental and from-scratch runs committed different trajectories")
	}
	if inc.Cost != base.Cost {
		t.Fatalf("faulted cost breakdowns diverge: incremental %+v from-scratch %+v", inc.Cost, base.Cost)
	}
}
