package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

func testSetup(t *testing.T) (*model.Instance, *workload.Predictor) {
	t.Helper()
	cfg := workload.PaperDefault()
	cfg.T = 8
	cfg.K = 6
	cfg.ClassesPerSBS = 4
	cfg.CacheCap = 2
	cfg.Bandwidth = 6
	cfg.Beta = 5
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := workload.NewPredictor(in.Demand, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return in, pred
}

func TestRunBaseline(t *testing.T) {
	in, pred := testSetup(t)
	res, err := Run(context.Background(), in, pred, FromBaseline(baseline.NewLRFU()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "LRFU" {
		t.Fatalf("Policy = %q", res.Policy)
	}
	if len(res.PerSlot) != in.T {
		t.Fatalf("PerSlot has %d entries, want %d", len(res.PerSlot), in.T)
	}
	var bs, repl float64
	var count int
	for _, m := range res.PerSlot {
		bs += m.BS
		repl += m.Replacement
		count += m.Replacements
		if m.CacheUtilization < 0 || m.CacheUtilization > 1 {
			t.Fatalf("CacheUtilization = %g", m.CacheUtilization)
		}
		if m.OffloadFraction < 0 || m.OffloadFraction > 1+1e-9 {
			t.Fatalf("OffloadFraction = %g", m.OffloadFraction)
		}
	}
	if math.Abs(bs-res.Cost.BS) > 1e-9 || math.Abs(repl-res.Cost.Replacement) > 1e-9 {
		t.Fatal("per-slot series do not sum to the breakdown")
	}
	if count != res.Cost.Replacements {
		t.Fatalf("per-slot replacements %d != total %d", count, res.Cost.Replacements)
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime recorded")
	}
}

func TestRunOfflineAndOnline(t *testing.T) {
	in, pred := testSetup(t)
	off, err := Run(context.Background(), in, pred, Offline(core.Options{MaxIter: 20}))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(context.Background(), in, pred, Online(online.RHC(4)))
	if err != nil {
		t.Fatal(err)
	}
	if off.Policy != "Offline" || on.Policy != "RHC(w=4)" {
		t.Fatalf("names: %q, %q", off.Policy, on.Policy)
	}
	// The offline solver knows everything; it should not lose to the
	// noisy-prediction controller by much (allow solver slack).
	if off.Cost.Total > on.Cost.Total*1.1+1e-9 {
		t.Fatalf("offline %g much worse than RHC %g", off.Cost.Total, on.Cost.Total)
	}
}

// TestRunDeterministic is the regression guard for reproducibility: two
// runs from the same seed must produce byte-identical trajectories and
// cost breakdowns, and attaching telemetry must not perturb either — the
// instrumentation is observational only.
func TestRunDeterministic(t *testing.T) {
	marshal := func(v any) []byte {
		t.Helper()
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	policies := []struct {
		name string
		mk   func() Policy
	}{
		{"Offline", func() Policy { return Offline(core.Options{MaxIter: 20}) }},
		{"RHC", func() Policy { return Online(online.RHC(4)) }},
	}
	for _, pc := range policies {
		t.Run(pc.name, func(t *testing.T) {
			// Rebuild the instance and predictor from scratch each time so
			// the comparison covers workload generation too.
			run := func(tel *obs.Telemetry) *Result {
				in, pred := testSetup(t)
				res, err := RunObserved(context.Background(), in, pred, pc.mk(), tel)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(nil), run(nil)
			if !bytes.Equal(marshal(a.Trajectory), marshal(b.Trajectory)) {
				t.Fatal("same seed produced different trajectories")
			}
			if a.Cost != b.Cost {
				t.Fatalf("same seed produced different costs: %+v vs %+v", a.Cost, b.Cost)
			}

			var col obs.Collector
			c := run(obs.New(&col, nil))
			if !bytes.Equal(marshal(a.Trajectory), marshal(c.Trajectory)) {
				t.Fatal("telemetry perturbed the trajectory")
			}
			if a.Cost != c.Cost {
				t.Fatalf("telemetry perturbed the cost: %+v vs %+v", a.Cost, c.Cost)
			}
			if len(col.ByType("run_summary")) != 1 {
				t.Fatalf("observed run emitted %d run_summary events, want 1", len(col.ByType("run_summary")))
			}

			// Span tracing is observational too: a traced run (spans plus
			// curve capture) must commit the identical trajectory.
			tracer := obs.NewTracer(nil)
			in, pred := testSetup(t)
			d, err := RunWith(obs.WithTracer(context.Background(), tracer),
				in, pred, pc.mk(), Config{Curves: true})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(marshal(a.Trajectory), marshal(d.Trajectory)) {
				t.Fatal("span tracing perturbed the trajectory")
			}
			if a.Cost != d.Cost {
				t.Fatalf("span tracing perturbed the cost: %+v vs %+v", a.Cost, d.Cost)
			}
			recs := tracer.Records()
			if len(recs) == 0 {
				t.Fatal("traced run recorded no spans")
			}
			names := map[string]bool{}
			for _, r := range recs {
				names[r.Name] = true
			}
			for _, want := range []string{"run", "solve", "dual_batch", "caching", "loadbalance", "recover"} {
				if !names[want] {
					t.Fatalf("trace missing %q spans (got %v)", want, names)
				}
			}
			if d.Curve == nil || len(d.Curve.CumCost) != in.T {
				t.Fatalf("curve capture missing or wrong length: %+v", d.Curve)
			}
			if len(d.Curve.Gap) == 0 {
				t.Fatal("curve capture recorded no gap points")
			}
		})
	}
}

func TestOnlineRequiresPredictor(t *testing.T) {
	in, _ := testSetup(t)
	if _, err := Run(context.Background(), in, nil, Online(online.RHC(4))); err == nil {
		t.Fatal("online policy ran without predictor")
	}
}

func TestRunValidatesInstance(t *testing.T) {
	in, pred := testSetup(t)
	in.T = 0
	if _, err := Run(context.Background(), in, pred, FromBaseline(baseline.NoCaching{})); err == nil {
		t.Fatal("Run accepted invalid instance")
	}
}

func TestEvaluateRejectsInfeasible(t *testing.T) {
	in, _ := testSetup(t)
	traj := model.NewTrajectory(in)
	traj[0].Y[0][0][0] = 1 // serve uncached content
	if _, _, err := Evaluate(in, traj); err == nil {
		t.Fatal("Evaluate accepted infeasible trajectory")
	}
}

// fractionalPolicy commits a trajectory that is feasible in the relaxed
// sense but violates the integrality invariant the auditor enforces.
type fractionalPolicy struct{}

func (fractionalPolicy) Name() string { return "Fractional" }

func (fractionalPolicy) Plan(_ context.Context, in *model.Instance, _ workload.Forecaster) (model.Trajectory, error) {
	traj := model.NewTrajectory(in)
	for t := range traj {
		traj[t].X[0][0] = 0.5 // within capacity, but not integral
	}
	return traj, nil
}

func TestRunWithAuditCleanRun(t *testing.T) {
	in, pred := testSetup(t)
	var col obs.Collector
	tel := obs.New(&col, obs.NewRegistry())
	res, err := RunWith(context.Background(), in, pred, Online(online.RHC(4)), Config{Audit: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil {
		t.Fatal("Audit report missing despite Config.Audit")
	}
	if !res.Audit.OK() {
		t.Fatalf("clean run flagged: %v", res.Audit.Err())
	}
	if len(col.ByType("audit_violation")) != 0 {
		t.Fatal("clean run emitted audit_violation events")
	}
	summaries := col.ByType("run_summary")
	if len(summaries) != 1 {
		t.Fatalf("%d run_summary events", len(summaries))
	}
	if got := summaries[0].Fields["audit_violations"]; got != 0 {
		t.Fatalf("run_summary audit_violations = %v, want 0", got)
	}
	if _, ok := summaries[0].Fields["audit_ms"]; !ok {
		t.Fatal("run_summary misses audit_ms")
	}

	// Without the flag the report must be absent and the summary unadorned.
	res2, err := Run(context.Background(), in, pred, Online(online.RHC(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Audit != nil {
		t.Fatal("Audit report attached without Config.Audit")
	}
}

// TestRunWithAuditIsObservational: a violating run still returns its
// result — the auditor reports, it does not veto — and the violations are
// published through telemetry.
func TestRunWithAuditIsObservational(t *testing.T) {
	in, pred := testSetup(t)
	var col obs.Collector
	reg := obs.NewRegistry()
	tel := obs.New(&col, reg)
	res, err := RunWith(context.Background(), in, pred, fractionalPolicy{}, Config{Audit: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil || res.Audit.OK() {
		t.Fatal("fractional trajectory passed the audit")
	}
	if len(col.ByType("audit_violation")) == 0 {
		t.Fatal("violations not published as events")
	}
	if got := reg.Counter("audit.violations").Value(); got != int64(len(res.Audit.Violations)) {
		t.Fatalf("audit.violations = %d for %d violations", got, len(res.Audit.Violations))
	}
	if got := col.ByType("run_summary")[0].Fields["audit_violations"]; got != len(res.Audit.Violations) {
		t.Fatalf("run_summary audit_violations = %v, want %d", got, len(res.Audit.Violations))
	}
}
