// Package sim runs caching/load-balancing policies over problem instances
// and accounts their costs: it is the numerical-evaluation harness behind
// §V. A Policy plans a full trajectory (offline solver, online controller
// or rule-based baseline, via the adapters below); Run verifies
// feasibility and produces the cost breakdown plus the per-slot series
// that the paper's figures plot.
//
// Every entry point is context-first: cancelling the context aborts the
// underlying solves within one solver iteration and surfaces a wrapped
// ctx.Err(). Policies that support deadline-budgeted solving (the
// offline solver and the online controllers) additionally implement
// Budgeted, which RunWith uses to wire a per-slot solve budget and
// degradation fallback through without changing the Policy interface.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"edgecache/internal/audit"
	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

// Always-on harness metrics (atomic; read by -metrics, /debug/vars).
var (
	mRuns     = obs.Default.Counter("sim.runs")
	mPlanTime = obs.Default.Timer("sim.plan")
	mDegraded = obs.Default.Counter("solver.degraded")
)

// Policy plans a trajectory for an instance. Online policies read
// forecasts from the predictor; offline policies and baselines use the
// instance's exact demand and ignore it.
type Policy interface {
	// Name is the label used in result tables.
	Name() string
	// Plan returns a feasible trajectory over the instance's horizon,
	// honouring ctx cancellation (a done ctx surfaces as a wrapped
	// ctx.Err() within one solver iteration).
	Plan(ctx context.Context, in *model.Instance, pred workload.Forecaster) (model.Trajectory, error)
}

// Observable is implemented by policies that can carry a telemetry
// handle into their solver. RunWith uses it to thread the handle
// through without changing the Policy interface; custom planners may
// implement it to receive the same handle.
type Observable interface {
	// Observe returns a copy of the policy wired to tel.
	Observe(tel *obs.Telemetry) Policy
}

// Budgeted is implemented by policies whose solves can run under a
// wall-clock budget with graceful degradation (best-so-far iterate,
// then fallback). RunWith uses it to wire Config.SlotBudget through.
type Budgeted interface {
	// WithBudget returns a copy of the policy whose solves degrade
	// gracefully after d of wall-clock time each; fb (nil = the LRFU +
	// reactive default) plans a window when nothing usable exists.
	WithBudget(d time.Duration, fb online.FallbackPlanner) Policy
}

// FaultAware is implemented by policies that react to an injected fault
// schedule beyond planning against its effective instance: event-driven
// replans, armed solver faults, retry-with-backoff. RunWith uses it to
// wire Config.Faults through; policies without it (baselines, the
// offline solver) still see the faults through the materialised
// instance's overlay.
type FaultAware interface {
	// WithFaults returns a copy of the policy armed with the schedule.
	WithFaults(s *fault.Schedule) Policy
}

// Offline adapts the primal-dual solver (Algorithm 1) into a Policy: the
// paper's "offline optimal" reference, which sees all information. Under
// a budget (Budgeted) the whole-horizon solve runs against one deadline
// and commits its best-so-far iterate when the deadline strikes.
func Offline(opts core.Options) Policy { return offlinePolicy{opts: opts} }

type offlinePolicy struct {
	opts     core.Options
	budget   time.Duration
	fallback online.FallbackPlanner
}

func (offlinePolicy) Name() string { return "Offline" }

func (p offlinePolicy) Observe(tel *obs.Telemetry) Policy {
	p.opts.Telemetry = tel
	return p
}

func (p offlinePolicy) WithBudget(d time.Duration, fb online.FallbackPlanner) Policy {
	p.budget = d
	p.fallback = fb
	return p
}

func (p offlinePolicy) Plan(ctx context.Context, in *model.Instance, _ workload.Forecaster) (model.Trajectory, error) {
	solveCtx, cancel := ctx, context.CancelFunc(nil)
	if p.budget > 0 {
		solveCtx, cancel = context.WithTimeout(ctx, p.budget)
	}
	res, err := core.Solve(solveCtx, in, p.opts)
	if cancel != nil {
		cancel()
	}
	if err != nil {
		if ctx.Err() != nil || !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		// Budget overrun with the parent context still live: degrade.
		return p.degrade(ctx, in, res)
	}
	return res.Trajectory, nil
}

// degrade commits the best-so-far iterate when it exists with a finite
// duality gap, else plans the whole horizon with the fallback — the same
// ladder the online controllers walk per window.
func (p offlinePolicy) degrade(ctx context.Context, in *model.Instance, partial *core.Result) (model.Trajectory, error) {
	tel := p.opts.Telemetry
	if partial != nil && partial.Trajectory != nil && !math.IsInf(partial.Gap, 1) {
		mDegraded.Inc()
		if tel.Enabled() {
			tel.Emit("solve_degraded", obs.Fields{
				"controller": p.Name(),
				"budget_ms":  float64(p.budget) / float64(time.Millisecond),
				"mode":       "best_iterate",
				"iterations": partial.Iterations,
				"gap":        partial.Gap,
			})
		}
		return partial.Trajectory, nil
	}
	fb := p.fallback
	if fb == nil {
		fb = online.DefaultFallback
	}
	traj, err := fb(ctx, in)
	if err != nil {
		return nil, fmt.Errorf("fallback: %w", err)
	}
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		return nil, fmt.Errorf("fallback produced infeasible trajectory: %w", err)
	}
	mDegraded.Inc()
	if tel.Enabled() {
		tel.Emit("solve_degraded", obs.Fields{
			"controller": p.Name(),
			"budget_ms":  float64(p.budget) / float64(time.Millisecond),
			"mode":       "fallback",
		})
	}
	return traj, nil
}

// Online adapts an online controller configuration into a Policy.
func Online(cfg online.Config) Policy { return onlinePolicy{cfg: cfg} }

type onlinePolicy struct{ cfg online.Config }

func (p onlinePolicy) Name() string { return p.cfg.Name() }

func (p onlinePolicy) Observe(tel *obs.Telemetry) Policy {
	p.cfg.Telemetry = tel
	return p
}

func (p onlinePolicy) WithBudget(d time.Duration, fb online.FallbackPlanner) Policy {
	p.cfg.SlotBudget = d
	p.cfg.Fallback = fb
	return p
}

func (p onlinePolicy) WithFaults(s *fault.Schedule) Policy {
	p.cfg.Faults = s
	return p
}

func (p onlinePolicy) Plan(ctx context.Context, in *model.Instance, pred workload.Forecaster) (model.Trajectory, error) {
	if pred == nil {
		return nil, errors.New("sim: online policy requires a predictor")
	}
	res, err := online.Run(ctx, in, pred, p.cfg)
	if err != nil {
		return nil, err
	}
	return res.Trajectory, nil
}

// FromBaseline adapts a rule-based baseline into a Policy.
func FromBaseline(b baseline.Policy) Policy { return baselinePolicy{b: b} }

type baselinePolicy struct{ b baseline.Policy }

func (p baselinePolicy) Name() string { return p.b.Name() }

func (p baselinePolicy) Plan(ctx context.Context, in *model.Instance, _ workload.Forecaster) (model.Trajectory, error) {
	return p.b.Plan(ctx, in)
}

// SlotMetrics are the per-slot series plotted by the paper's figures.
type SlotMetrics struct {
	// BS and SBS are the operating costs f_t and g_t.
	BS  float64 `json:"bsCost"`
	SBS float64 `json:"sbsCost"`
	// Replacement is the switching cost paid entering this slot;
	// Replacements is the insertion count.
	Replacement  float64 `json:"replacementCost"`
	Replacements int     `json:"replacements"`
	// CacheUtilization is cached items / total capacity.
	CacheUtilization float64 `json:"cacheUtilization"`
	// OffloadFraction is SBS-served demand / total demand.
	OffloadFraction float64 `json:"offloadFraction"`
}

// Result is one policy's evaluated run.
type Result struct {
	// Policy is the planner's name.
	Policy string `json:"policy"`
	// Trajectory is the planned, verified decision sequence. It is
	// excluded from JSON output (bulky and reproducible from the seed).
	Trajectory model.Trajectory `json:"-"`
	// Cost is the horizon-total breakdown (objective of eq. 9).
	Cost model.CostBreakdown `json:"cost"`
	// PerSlot holds the per-slot series.
	PerSlot []SlotMetrics `json:"perSlot"`
	// Runtime is the wall-clock planning time (JSON: nanoseconds, per
	// time.Duration's integer encoding).
	Runtime time.Duration `json:"runtimeNanos"`
	// Audit is the differential auditor's report when Config.Audit was
	// set (nil otherwise). A clean run has Audit.OK() == true.
	Audit *audit.Report `json:"audit,omitempty"`
	// Curve holds the convergence/regret curves when Config.Curves was
	// set (nil otherwise).
	Curve *Curve `json:"curve,omitempty"`
}

// Config tunes one evaluated run beyond the policy itself — the options
// behind the public API's functional RunOptions.
type Config struct {
	// Telemetry is threaded into the policy's solvers (Observable) and
	// receives one run_summary event per evaluated run. nil disables.
	Telemetry *obs.Telemetry
	// SlotBudget bounds each solve's wall-clock time for Budgeted
	// policies (per window for online controllers, whole-horizon for the
	// offline solver); overruns degrade gracefully. 0 disables.
	SlotBudget time.Duration
	// Fallback overrides the degraded-mode planner (nil = LRFU placement
	// + reactive load split). Only consulted when SlotBudget is set.
	Fallback online.FallbackPlanner
	// Audit re-derives everything the committed trajectory claims
	// (package audit): per-slot constraints, placement integrality and an
	// independent cost recomputation. Violations are published as
	// audit_violation events plus the audit.violations counter, and the
	// report is attached to Result.Audit. Observational: a violating run
	// still returns its result.
	Audit bool
	// Faults injects the schedule's failures into the run: topology
	// injectors are materialised into the instance's effective per-slot
	// overlay, prediction corruption is hooked into the predictor, and
	// FaultAware policies additionally arm solver faults and event-driven
	// replans. nil (or an empty schedule) is the failure-free run.
	Faults *fault.Schedule
	// Curves captures the solver's dual-gap trajectory and the committed
	// cumulative cost into Result.Curve (see Curve). Observational: it
	// taps the event stream without changing solver behaviour.
	Curves bool
}

// Run plans with the policy, verifies feasibility, and accounts costs.
func Run(ctx context.Context, in *model.Instance, pred workload.Forecaster, p Policy) (*Result, error) {
	return RunWith(ctx, in, pred, p, Config{})
}

// RunObserved is Run with telemetry threaded into the policy's solvers;
// a nil handle makes it identical to Run.
func RunObserved(ctx context.Context, in *model.Instance, pred workload.Forecaster, p Policy, tel *obs.Telemetry) (*Result, error) {
	return RunWith(ctx, in, pred, p, Config{Telemetry: tel})
}

// RunWith plans with the policy under the given run configuration,
// verifies feasibility, and accounts costs. One run_summary event is
// emitted per evaluated run when telemetry is enabled.
func RunWith(ctx context.Context, in *model.Instance, pred workload.Forecaster, p Policy, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tel := cfg.Telemetry
	var curves *curveCollector
	if cfg.Curves {
		// Tap the event stream: tee into the collector next to whatever
		// sink the caller installed (or alone, enabling telemetry just
		// for the capture — still observational either way).
		curves = &curveCollector{}
		if tel.Enabled() {
			tel = obs.New(obs.Tee(tel.Sink(), curves), tel.Registry())
		} else {
			tel = obs.New(curves, tel.Registry())
		}
	}
	if !cfg.Faults.Empty() {
		// Materialise the fault schedule into the effective per-slot
		// instance (shares the base demand tensor, so the predictor's
		// truth pointer stays valid) and corrupt the predictor's output
		// when the schedule says so.
		out, err := cfg.Faults.Materialize(in, tel)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		in = out
		if hook := cfg.Faults.Corruptor(in.Demand); hook != nil && pred != nil {
			pred = workload.Corrupt(pred, hook)
		}
		if fa, ok := p.(FaultAware); ok {
			p = fa.WithFaults(cfg.Faults)
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if o, ok := p.(Observable); ok && tel.Enabled() {
		p = o.Observe(tel)
	}
	if cfg.SlotBudget > 0 {
		if b, ok := p.(Budgeted); ok {
			p = b.WithBudget(cfg.SlotBudget, cfg.Fallback)
		}
	}
	mRuns.Inc()
	// Trace root: one "run" span per evaluated policy. Children (version
	// tracks, window solves, dual batches) hang off the derived ctx.
	ctx, runSpan := obs.StartSpan(ctx, "run")
	runSpan.Set("policy", p.Name())
	defer runSpan.End()
	start := time.Now()
	traj, err := p.Plan(ctx, in, pred)
	if err != nil {
		// A failed plan still gets its run_summary (with the error and
		// whether the caller cancelled), so a monitoring pipeline can tell
		// an aborted run from one that hung and never reported.
		if tel.Enabled() {
			tel.Emit("run_summary", obs.Fields{
				"policy":    p.Name(),
				"slots":     in.T,
				"error":     err.Error(),
				"cancelled": ctx.Err() != nil,
				"plan_ms":   float64(time.Since(start)) / float64(time.Millisecond),
			})
		}
		return nil, fmt.Errorf("sim: %s: %w", p.Name(), err)
	}
	elapsed := time.Since(start)
	mPlanTime.Observe(elapsed)

	// Audit before Evaluate so violations are published even when the
	// trajectory is rejected as infeasible below.
	var rep *audit.Report
	var auditTime time.Duration
	if cfg.Audit {
		auditStart := time.Now()
		rep = audit.Trajectory(in, traj, nil, audit.Options{})
		auditTime = time.Since(auditStart)
		rep.Publish(tel, p.Name())
	}

	perSlot, cost, err := Evaluate(in, traj)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name(), err)
	}
	if tel.Enabled() {
		fields := obs.Fields{
			"policy":           p.Name(),
			"slots":            in.T,
			"total_cost":       cost.Total,
			"bs_cost":          cost.BS,
			"sbs_cost":         cost.SBS,
			"replacement_cost": cost.Replacement,
			"replacements":     cost.Replacements,
			"plan_ms":          float64(elapsed) / float64(time.Millisecond),
		}
		if cfg.Audit {
			fields["audit_violations"] = len(rep.Violations)
			fields["audit_ms"] = float64(auditTime) / float64(time.Millisecond)
		}
		tel.Emit("run_summary", fields)
	}
	res := &Result{
		Policy:     p.Name(),
		Trajectory: traj,
		Cost:       cost,
		PerSlot:    perSlot,
		Runtime:    elapsed,
		Audit:      rep,
	}
	if curves != nil {
		res.Curve = curves.curve(perSlot)
	}
	return res, nil
}

// Evaluate verifies a trajectory and computes its per-slot series and
// total cost breakdown.
func Evaluate(in *model.Instance, traj model.Trajectory) ([]SlotMetrics, model.CostBreakdown, error) {
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		return nil, model.CostBreakdown{}, err
	}
	perSlot := make([]SlotMetrics, in.T)
	prev := in.InitialPlan()
	// CacheUtilization keeps the *base* capacity as its denominator even
	// when a fault overlay shrinks the effective capacity: an outage then
	// reads as a utilisation dip instead of being renormalised away.
	var totalCap int
	for n := 0; n < in.N; n++ {
		totalCap += in.CacheCap[n]
	}
	for t := range traj {
		m := SlotMetrics{
			BS:           in.BSCost(t, traj[t].Y),
			SBS:          in.SBSCost(t, traj[t].Y),
			Replacement:  in.ReplacementCost(prev, traj[t].X),
			Replacements: model.ReplacementCount(prev, traj[t].X),
		}
		var cached int
		var served, demand float64
		for n := 0; n < in.N; n++ {
			cached += len(traj[t].X.Items(n))
			yn := traj[t].Y[n]
			in.Demand.ForEachActive(t, n, func(mm, k int, rate float64) {
				served += rate * yn[mm][k]
				demand += rate
			})
		}
		if totalCap > 0 {
			m.CacheUtilization = float64(cached) / float64(totalCap)
		}
		if demand > 0 {
			m.OffloadFraction = served / demand
		}
		perSlot[t] = m
		prev = traj[t].X
	}
	return perSlot, in.TotalCost(traj), nil
}
