// Package sim runs caching/load-balancing policies over problem instances
// and accounts their costs: it is the numerical-evaluation harness behind
// §V. A Policy plans a full trajectory (offline solver, online controller
// or rule-based baseline, via the adapters below); Run verifies
// feasibility and produces the cost breakdown plus the per-slot series
// that the paper's figures plot.
package sim

import (
	"errors"
	"fmt"
	"time"

	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/workload"
)

// Always-on harness metrics (atomic; read by -metrics, /debug/vars).
var (
	mRuns     = obs.Default.Counter("sim.runs")
	mPlanTime = obs.Default.Timer("sim.plan")
)

// Policy plans a trajectory for an instance. Online policies read
// forecasts from the predictor; offline policies and baselines use the
// instance's exact demand and ignore it.
type Policy interface {
	// Name is the label used in result tables.
	Name() string
	// Plan returns a feasible trajectory over the instance's horizon.
	Plan(in *model.Instance, pred *workload.Predictor) (model.Trajectory, error)
}

// Observable is implemented by policies that can carry a telemetry
// handle into their solver. RunObserved uses it to thread the handle
// through without changing the Policy interface; custom planners may
// implement it to receive the same handle.
type Observable interface {
	// Observe returns a copy of the policy wired to tel.
	Observe(tel *obs.Telemetry) Policy
}

// Offline adapts the primal-dual solver (Algorithm 1) into a Policy: the
// paper's "offline optimal" reference, which sees all information.
func Offline(opts core.Options) Policy { return offlinePolicy{opts: opts} }

type offlinePolicy struct{ opts core.Options }

func (offlinePolicy) Name() string { return "Offline" }

func (p offlinePolicy) Observe(tel *obs.Telemetry) Policy {
	p.opts.Telemetry = tel
	return p
}

func (p offlinePolicy) Plan(in *model.Instance, _ *workload.Predictor) (model.Trajectory, error) {
	res, err := core.Solve(in, p.opts)
	if err != nil {
		return nil, err
	}
	return res.Trajectory, nil
}

// Online adapts an online controller configuration into a Policy.
func Online(cfg online.Config) Policy { return onlinePolicy{cfg: cfg} }

type onlinePolicy struct{ cfg online.Config }

func (p onlinePolicy) Name() string { return p.cfg.Name() }

func (p onlinePolicy) Observe(tel *obs.Telemetry) Policy {
	p.cfg.Telemetry = tel
	return p
}

func (p onlinePolicy) Plan(in *model.Instance, pred *workload.Predictor) (model.Trajectory, error) {
	if pred == nil {
		return nil, errors.New("sim: online policy requires a predictor")
	}
	res, err := online.Run(in, pred, p.cfg)
	if err != nil {
		return nil, err
	}
	return res.Trajectory, nil
}

// FromBaseline adapts a rule-based baseline into a Policy.
func FromBaseline(b baseline.Policy) Policy { return baselinePolicy{b: b} }

type baselinePolicy struct{ b baseline.Policy }

func (p baselinePolicy) Name() string { return p.b.Name() }

func (p baselinePolicy) Plan(in *model.Instance, _ *workload.Predictor) (model.Trajectory, error) {
	return p.b.Plan(in)
}

// SlotMetrics are the per-slot series plotted by the paper's figures.
type SlotMetrics struct {
	// BS and SBS are the operating costs f_t and g_t.
	BS  float64 `json:"bsCost"`
	SBS float64 `json:"sbsCost"`
	// Replacement is the switching cost paid entering this slot;
	// Replacements is the insertion count.
	Replacement  float64 `json:"replacementCost"`
	Replacements int     `json:"replacements"`
	// CacheUtilization is cached items / total capacity.
	CacheUtilization float64 `json:"cacheUtilization"`
	// OffloadFraction is SBS-served demand / total demand.
	OffloadFraction float64 `json:"offloadFraction"`
}

// Result is one policy's evaluated run.
type Result struct {
	// Policy is the planner's name.
	Policy string `json:"policy"`
	// Trajectory is the planned, verified decision sequence. It is
	// excluded from JSON output (bulky and reproducible from the seed).
	Trajectory model.Trajectory `json:"-"`
	// Cost is the horizon-total breakdown (objective of eq. 9).
	Cost model.CostBreakdown `json:"cost"`
	// PerSlot holds the per-slot series.
	PerSlot []SlotMetrics `json:"perSlot"`
	// Runtime is the wall-clock planning time (JSON: nanoseconds, per
	// time.Duration's integer encoding).
	Runtime time.Duration `json:"runtimeNanos"`
}

// Run plans with the policy, verifies feasibility, and accounts costs.
func Run(in *model.Instance, pred *workload.Predictor, p Policy) (*Result, error) {
	return RunObserved(in, pred, p, nil)
}

// RunObserved is Run with telemetry: the handle is threaded into the
// policy's solvers (when the policy implements Observable) and one
// run_summary event is emitted per evaluated run. A nil handle makes it
// identical to Run.
func RunObserved(in *model.Instance, pred *workload.Predictor, p Policy, tel *obs.Telemetry) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if o, ok := p.(Observable); ok && tel.Enabled() {
		p = o.Observe(tel)
	}
	mRuns.Inc()
	start := time.Now()
	traj, err := p.Plan(in, pred)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name(), err)
	}
	elapsed := time.Since(start)
	mPlanTime.Observe(elapsed)

	perSlot, cost, err := Evaluate(in, traj)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", p.Name(), err)
	}
	if tel.Enabled() {
		tel.Emit("run_summary", obs.Fields{
			"policy":           p.Name(),
			"slots":            in.T,
			"total_cost":       cost.Total,
			"bs_cost":          cost.BS,
			"sbs_cost":         cost.SBS,
			"replacement_cost": cost.Replacement,
			"replacements":     cost.Replacements,
			"plan_ms":          float64(elapsed) / float64(time.Millisecond),
		})
	}
	return &Result{
		Policy:     p.Name(),
		Trajectory: traj,
		Cost:       cost,
		PerSlot:    perSlot,
		Runtime:    elapsed,
	}, nil
}

// Evaluate verifies a trajectory and computes its per-slot series and
// total cost breakdown.
func Evaluate(in *model.Instance, traj model.Trajectory) ([]SlotMetrics, model.CostBreakdown, error) {
	if err := in.CheckTrajectory(traj, 1e-6); err != nil {
		return nil, model.CostBreakdown{}, err
	}
	perSlot := make([]SlotMetrics, in.T)
	prev := in.InitialPlan()
	var totalCap int
	for n := 0; n < in.N; n++ {
		totalCap += in.CacheCap[n]
	}
	for t := range traj {
		m := SlotMetrics{
			BS:           in.BSCost(t, traj[t].Y),
			SBS:          in.SBSCost(t, traj[t].Y),
			Replacement:  in.ReplacementCost(prev, traj[t].X),
			Replacements: model.ReplacementCount(prev, traj[t].X),
		}
		var cached int
		var served, demand float64
		for n := 0; n < in.N; n++ {
			cached += len(traj[t].X.Items(n))
			row := in.Demand.Slot(t, n)
			for mm := 0; mm < in.Classes[n]; mm++ {
				base := mm * in.K
				for k := 0; k < in.K; k++ {
					served += row[base+k] * traj[t].Y[n][mm][k]
					demand += row[base+k]
				}
			}
		}
		if totalCap > 0 {
			m.CacheUtilization = float64(cached) / float64(totalCap)
		}
		if demand > 0 {
			m.OffloadFraction = served / demand
		}
		perSlot[t] = m
		prev = traj[t].X
	}
	return perSlot, in.TotalCost(traj), nil
}
