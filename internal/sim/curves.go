// Convergence and regret curves: an opt-in per-run capture of the
// solver's dual-gap trajectory and the committed cost accumulation,
// next to the relaxed (pre-rounding) objective that anchors the
// Theorem 3 comparison. The capture is a telemetry sink fed by the
// existing event stream, so enabling it changes no solver behaviour.
package sim

import (
	"sync"

	"edgecache/internal/obs"
)

// GapPoint is one retained solver_iteration observation: the Algorithm 1
// bounds and relative duality gap at dual iteration Iter.
type GapPoint struct {
	Iter int     `json:"iter"`
	LB   float64 `json:"lb"`
	UB   float64 `json:"ub"`
	Gap  float64 `json:"gap"`
}

// Curve is the per-run curve bundle attached to Result when
// Config.Curves is set.
type Curve struct {
	// Gap is the dual-gap trajectory in emission order. Online
	// controllers run their FHC versions concurrently, so points from
	// different window solves interleave; each point is still a valid
	// (LB, UB, gap) certificate for its own solve.
	Gap []GapPoint `json:"gap,omitempty"`
	// CumCost[t] is the committed cost accumulated through slot t
	// (operating + replacement), the regret curve's numerator.
	CumCost []float64 `json:"cumCost,omitempty"`
	// RelaxedCost is the online controller's pre-rounding objective —
	// the left side of the Theorem 3 bound. Zero for policies that do
	// not report one (offline solver, baselines).
	RelaxedCost float64 `json:"relaxedCost,omitempty"`
}

// curveCollector is the Sink capturing the curve bundle. Safe for
// concurrent use (FHC versions emit from parallel goroutines).
type curveCollector struct {
	mu      sync.Mutex
	gap     []GapPoint
	relaxed float64
}

func (c *curveCollector) Emit(e obs.Event) {
	switch e.Type {
	case "solver_iteration":
		p := GapPoint{
			Iter: fieldAsInt(e.Fields, "iter"),
			LB:   fieldAsFloat(e.Fields, "lb"),
			UB:   fieldAsFloat(e.Fields, "ub"),
			Gap:  fieldAsFloat(e.Fields, "gap"),
		}
		c.mu.Lock()
		c.gap = append(c.gap, p)
		c.mu.Unlock()
	case "controller_done":
		c.mu.Lock()
		c.relaxed = fieldAsFloat(e.Fields, "relaxed_cost")
		c.mu.Unlock()
	}
}

// curve assembles the bundle: the captured gap trajectory plus the
// cumulative committed cost derived from the evaluated per-slot series.
func (c *curveCollector) curve(perSlot []SlotMetrics) *Curve {
	c.mu.Lock()
	defer c.mu.Unlock()
	cv := &Curve{Gap: c.gap, RelaxedCost: c.relaxed}
	cv.CumCost = make([]float64, len(perSlot))
	var cum float64
	for t, m := range perSlot {
		cum += m.BS + m.SBS + m.Replacement
		cv.CumCost[t] = cum
	}
	return cv
}

func fieldAsInt(f obs.Fields, key string) int {
	switch v := f[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return 0
}

func fieldAsFloat(f obs.Fields, key string) float64 {
	switch v := f[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return 0
}
