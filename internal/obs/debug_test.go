package obs

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestPublishExpvarIdempotent(t *testing.T) {
	// Would panic on the second call if not guarded (expvar.Publish
	// forbids duplicate names).
	PublishExpvar()
	PublishExpvar()
	PublishExpvar()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	Default.Counter("test.debug_endpoints").Inc()
	Default.Histogram("test.debug_hist").Observe(0.5)
	Flight.Emit(Event{Time: time.Now(), Type: "solver_iteration", Fields: Fields{"iter": 1}})

	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "edgecache_test_debug_endpoints_total") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "edgecache_test_debug_hist_bucket") {
		t.Fatalf("/metrics missing histogram buckets:\n%s", body)
	}

	code, body = get(t, "http://"+srv.Addr()+"/debug/solver")
	if code != http.StatusOK {
		t.Fatalf("/debug/solver status %d", code)
	}
	if !strings.Contains(body, `"capacity"`) {
		t.Fatalf("/debug/solver not a flight snapshot:\n%s", body)
	}
}

func TestDebugServerCloseDoesNotLeak(t *testing.T) {
	// Warm up anything lazily started by the HTTP stack so the baseline
	// is stable.
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get(t, "http://"+srv.Addr()+"/debug/vars")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s, err := ServeDebug("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		get(t, "http://"+s.Addr()+"/metrics")
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Idle HTTP client connections park goroutines briefly; allow them
	// to drain before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked across start/stop cycles: %d -> %d\n%s",
			baseline, n, buf[:runtime.Stack(buf, true)])
	}

	// Close is idempotent and nil-safe.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
	if nilSrv.Addr() != "" {
		t.Fatal("nil server Addr must be empty")
	}
}
