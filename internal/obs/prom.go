// Prometheus text exposition (format 0.0.4) for the metrics registry —
// dependency-free, served at /metrics by the debug server. Counters and
// gauges map 1:1; timers and histograms are exposed as native Prometheus
// histograms (cumulative power-of-two buckets, _sum, _count) plus a
// companion *_quantile gauge family carrying the registry's conservative
// p50/p95/p99 estimates, so dashboards get quantiles without PromQL
// histogram_quantile over sparse scrapes.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// promName converts a registry instrument name ("core.p1_solve") into a
// Prometheus metric name ("edgecache_core_p1_solve"): prefixed,
// lowercase-safe, every non-alphanumeric rune folded to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("edgecache_"))
	b.WriteString("edgecache_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every instrument in Prometheus text format,
// families sorted by name. Safe to call concurrently with instrument
// updates (values are atomic reads; slight skew between lines of one
// family is inherent to lock-free instruments and acceptable to
// Prometheus).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s Monotonic counter %s.\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %s\n",
			pn, name, pn, pn, promFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(timers) {
		t := timers[name]
		var cum []bucketCount
		for i := 0; i < timerBuckets; i++ {
			if c := t.buckets[i].Load(); c > 0 {
				ub := time.Microsecond
				if i > 0 {
					ub = time.Duration(1<<uint(i)) * time.Microsecond
				}
				cum = append(cum, bucketCount{ub.Seconds(), c})
			}
		}
		st := t.Stats()
		if err := writePromHistogram(w, promName(name)+"_seconds", name+" (seconds)", cum,
			st.Count, st.Total.Seconds(),
			st.P50.Seconds(), st.P95.Seconds(), st.P99.Seconds()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		var cum []bucketCount
		for i := 0; i < histBuckets; i++ {
			if c := h.buckets[i].Load(); c > 0 {
				cum = append(cum, bucketCount{histUpperBound(i), c})
			}
		}
		st := h.Stats()
		if err := writePromHistogram(w, promName(name), name, cum,
			st.Count, st.Sum, st.P50, st.P95, st.P99); err != nil {
			return err
		}
	}
	return nil
}

// bucketCount is one non-empty bucket: inclusive upper bound + raw count.
type bucketCount struct {
	le    float64
	count int64
}

// writePromHistogram renders one histogram family (sparse cumulative
// buckets + +Inf + _sum/_count) followed by its *_quantile gauge family.
// The registry's top bucket absorbs out-of-range observations, so its
// bound is dropped and those land in +Inf only.
func writePromHistogram(w io.Writer, pn, help string, buckets []bucketCount, count int64, sum, p50, p95, p99 float64) error {
	if _, err := fmt.Fprintf(w, "# HELP %s Bucketed histogram %s.\n# TYPE %s histogram\n", pn, help, pn); err != nil {
		return err
	}
	var cum int64
	for _, b := range buckets {
		cum += b.count
		if cum == count {
			// Everything from here up is the total; +Inf alone carries it
			// (also hides the clamped top bucket's synthetic bound).
			break
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b.le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		pn, count, pn, promFloat(sum), pn, count); err != nil {
		return err
	}
	if count == 0 {
		return nil
	}
	qn := pn + "_quantile"
	if _, err := fmt.Fprintf(w, "# HELP %s Conservative bucket-bound quantiles of %s.\n# TYPE %s gauge\n", qn, help, qn); err != nil {
		return err
	}
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", p50}, {"0.95", p95}, {"0.99", p99}} {
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", qn, q.label, promFloat(q.v)); err != nil {
			return err
		}
	}
	return nil
}
