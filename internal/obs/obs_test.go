package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTelemetryIsSafeAndFree(t *testing.T) {
	var tel *Telemetry
	if tel.Enabled() {
		t.Fatal("nil telemetry reports enabled")
	}
	tel.Emit("x", Fields{"a": 1}) // must not panic
	if tel.Registry() != Default {
		t.Fatal("nil telemetry does not fall back to Default registry")
	}
	if tel.Sink() != nil {
		t.Fatal("nil telemetry has a sink")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if tel.Enabled() {
			tel.Emit("x", Fields{"a": 1})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emission path allocates %v times per call", allocs)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(3)
	r.Timer("t").Observe(time.Second)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot has counters: %v", s.Counters)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Gauge("level").Set(float64(i))
				r.Timer("lat").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	ts := r.Timer("lat").Stats()
	if ts.Count != 8000 {
		t.Fatalf("timer count = %d, want 8000", ts.Count)
	}
	if ts.Min > ts.Max || ts.Mean < ts.Min || ts.Mean > ts.Max {
		t.Fatalf("inconsistent timer stats: %+v", ts)
	}
	if ts.P50 <= 0 || ts.P95 < ts.P50 {
		t.Fatalf("inconsistent quantiles: %+v", ts)
	}
}

func TestTimerStatsEmpty(t *testing.T) {
	r := NewRegistry()
	if s := r.Timer("t").Stats(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty timer stats = %+v", s)
	}
}

func TestJSONLSinkWritesValidLines(t *testing.T) {
	var buf bytes.Buffer
	tel := New(NewJSONL(&buf), NewRegistry())
	if !tel.Enabled() {
		t.Fatal("telemetry with sink reports disabled")
	}
	tel.Emit("solver_iteration", Fields{"iter": 1, "lb": 10.5, "ub": 12.0, "gap": 0.125})
	tel.Emit("solver_done", Fields{"iterations": 1, "converged": false})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if rec["event"] != "solver_iteration" || rec["lb"] != 10.5 {
		t.Fatalf("unexpected record: %v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Fatalf("invalid ts: %v", err)
	}
}

func TestJSONLSinkCloseFlushesBufferedWriter(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	s := NewJSONL(bw)
	s.Emit(Event{Time: time.Now(), Type: "x"})
	if buf.Len() != 0 {
		t.Skip("writer flushed eagerly; nothing to assert")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close did not flush the buffered writer")
	}
}

func TestTextSinkFiltersAndRendersProgress(t *testing.T) {
	var buf bytes.Buffer
	s := NewText(&buf, "progress")
	s.Emit(Event{Type: "solver_iteration", Fields: Fields{"iter": 1}})
	s.Emit(Event{Type: "progress", Fields: Fields{"msg": "fig2: beta=50"}})
	if got := buf.String(); got != "fig2: beta=50\n" {
		t.Fatalf("text sink output = %q", got)
	}
}

func TestTeeDuplicates(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	s := Tee(a, nil, b)
	s.Emit(Event{Type: "x"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("tee delivered %d/%d events", len(a.Events()), len(b.Events()))
	}
	if single := Tee(nil, a); single != Sink(a) {
		t.Fatal("tee of one sink is not the sink itself")
	}
}

func TestCollectorByType(t *testing.T) {
	c := &Collector{}
	c.Emit(Event{Type: "a"})
	c.Emit(Event{Type: "b"})
	c.Emit(Event{Type: "a"})
	if got := len(c.ByType("a")); got != 2 {
		t.Fatalf("ByType(a) = %d events, want 2", got)
	}
}

func TestWriteTextSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.solves").Add(3)
	r.Gauge("core.last_gap").Set(0.01)
	r.Timer("core.p1_solve").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"core.solves", "core.last_gap", "core.p1_solve", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics text output missing %q:\n%s", want, out)
		}
	}
}

func TestServeDebugServesExpvarAndPprof(t *testing.T) {
	Default.Counter("test.debug_endpoint").Inc()
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body[:n]), "edgecache") {
			t.Fatalf("expvar output missing edgecache registry:\n%s", body[:n])
		}
	}
}
