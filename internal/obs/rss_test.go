package obs

import (
	"runtime"
	"testing"
)

func TestPeakRSSBytes(t *testing.T) {
	b, exact := PeakRSSBytes()
	if b == 0 {
		t.Fatal("peak RSS reported as zero")
	}
	if runtime.GOOS == "linux" && !exact {
		t.Log("VmHWM unavailable on linux; fell back to runtime estimate")
	}
	// The high-water mark can only grow.
	ballast := make([]byte, 1<<20)
	for i := range ballast {
		ballast[i] = byte(i)
	}
	b2, _ := PeakRSSBytes()
	if b2 < b {
		t.Fatalf("peak RSS shrank: %d then %d", b, b2)
	}
	runtime.KeepAlive(ballast)
}
