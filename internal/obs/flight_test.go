package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func iterEvent(i int) Event {
	return Event{Time: time.Now(), Type: "solver_iteration", Fields: Fields{
		"iter": i, "lb": float64(i), "ub": float64(2 * i), "gap": 0.5, "step": 0.1,
	}}
}

func TestFlightRecorderRetainsAndWraps(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		r.Emit(iterEvent(i))
	}
	r.Emit(Event{Time: time.Now(), Type: "solve_degraded", Fields: Fields{"mode": "fallback"}})
	r.Emit(Event{Time: time.Now(), Type: "progress", Fields: Fields{"ignored": true}})

	snap := r.Snapshot()
	if snap.Capacity != 16 {
		t.Fatalf("capacity = %d", snap.Capacity)
	}
	if len(snap.Samples) != 16 {
		t.Fatalf("retained %d samples, want 16", len(snap.Samples))
	}
	if snap.Dropped != 24 {
		t.Fatalf("dropped = %d, want 24", snap.Dropped)
	}
	// Oldest first; the newest sample is iteration 39.
	if snap.Samples[0].Iter != 24 || snap.Samples[15].Iter != 39 {
		t.Fatalf("ring order wrong: first=%d last=%d", snap.Samples[0].Iter, snap.Samples[15].Iter)
	}
	for i := 1; i < len(snap.Samples); i++ {
		if snap.Samples[i].Seq <= snap.Samples[i-1].Seq {
			t.Fatal("sample seq not increasing")
		}
	}
	if len(snap.Events) != 1 || snap.Events[0].Type != "solve_degraded" {
		t.Fatalf("events = %+v", snap.Events)
	}
	if snap.Events[0].Fields["mode"] != "fallback" {
		t.Fatalf("event fields = %v", snap.Events[0].Fields)
	}
}

func TestFlightRecorderJSONAndText(t *testing.T) {
	r := NewFlightRecorder(16)
	r.Emit(iterEvent(1))
	r.Emit(Event{Time: time.Now(), Type: "replan", Fields: Fields{"event_slot": 7}})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output invalid: %v", err)
	}
	if len(snap.Samples) != 1 || len(snap.Events) != 1 {
		t.Fatalf("decoded snapshot %+v", snap)
	}

	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flight recorder:", "iter=1", "replan"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("text dump missing %q:\n%s", want, buf.String())
		}
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(iterEvent(g*100 + i))
				if i%10 == 0 {
					r.Emit(Event{Time: time.Now(), Type: "retry", Fields: Fields{"attempt": i}})
				}
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap.Samples) != 64 {
		t.Fatalf("retained %d samples, want 64", len(snap.Samples))
	}
	if snap.Dropped != 800-64 {
		t.Fatalf("dropped = %d, want %d", snap.Dropped, 800-64)
	}
}

func TestFlightRecorderResizeAndNil(t *testing.T) {
	var nilRec *FlightRecorder
	nilRec.Emit(iterEvent(1)) // no-op, no panic
	if s := nilRec.Snapshot(); s.Capacity != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}

	r := NewFlightRecorder(4) // clamped up to 16
	if got := r.Snapshot().Capacity; got != 16 {
		t.Fatalf("minimum capacity = %d, want 16", got)
	}
	for i := 0; i < 20; i++ {
		r.Emit(iterEvent(i))
	}
	r.Resize(32)
	snap := r.Snapshot()
	if snap.Capacity != 32 || len(snap.Samples) != 0 || snap.Dropped != 0 {
		t.Fatalf("resize did not reset: %+v", snap)
	}
}

func TestFlightRecorderFieldCoercion(t *testing.T) {
	r := NewFlightRecorder(16)
	// Decoded-JSONL shape: numbers arrive as float64.
	raw := fmt.Sprintf(`{"iter": %d}`, 7)
	var f Fields
	if err := json.Unmarshal([]byte(raw), &f); err != nil {
		t.Fatal(err)
	}
	f["lb"] = int64(3)
	f["ub"] = 6 // int
	r.Emit(Event{Time: time.Now(), Type: "solver_iteration", Fields: f})
	s := r.Snapshot().Samples[0]
	if s.Iter != 7 || s.LB != 3 || s.UB != 6 {
		t.Fatalf("coerced sample = %+v", s)
	}
}
