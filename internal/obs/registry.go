// Metrics registry: named counters, gauges and timing histograms shared
// by every solver layer. Instruments are cheap lock-free atomics so the
// solvers keep them always on; whether anything *reads* them (the
// -metrics flag, the expvar endpoint) is the operator's choice. All
// instruments are nil-safe: methods on a nil instrument are no-ops, so a
// missing registry never needs guarding at the call site.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Nil-safe.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (last-write-wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// timerBuckets is the number of power-of-two latency buckets: bucket i
// counts observations with ceil(log2(d/µs)) = i, i.e. sub-microsecond
// through ~18 minutes; the last bucket absorbs everything longer.
const timerBuckets = 31

// Timer is a duration histogram with power-of-two microsecond buckets
// plus exact count/sum/min/max.
type Timer struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 until first observation
	max     atomic.Int64
	buckets [timerBuckets]atomic.Int64
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(math.MaxInt64)
	return t
}

// Observe records one duration. Nil-safe.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.sum.Add(ns)
	for {
		cur := t.min.Load()
		if ns >= cur || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := bits.Len64(uint64(ns) / uint64(time.Microsecond))
	if b >= timerBuckets {
		b = timerBuckets - 1
	}
	t.buckets[b].Add(1)
}

// Time runs fn and records its duration. Nil-safe (fn still runs).
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// TimerStats is a point-in-time summary of a Timer.
type TimerStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"totalNanos"`
	Min   time.Duration `json:"minNanos"`
	Max   time.Duration `json:"maxNanos"`
	Mean  time.Duration `json:"meanNanos"`
	// P50, P95 and P99 are estimated from the power-of-two histogram
	// (upper bucket bounds), so they are conservative to within a factor
	// of two.
	P50 time.Duration `json:"p50Nanos"`
	P95 time.Duration `json:"p95Nanos"`
	P99 time.Duration `json:"p99Nanos"`
}

// Stats summarises the timer (zero value for nil or empty).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	s := TimerStats{Count: t.count.Load(), Total: time.Duration(t.sum.Load())}
	if s.Count == 0 {
		return s
	}
	s.Min = time.Duration(t.min.Load())
	s.Max = time.Duration(t.max.Load())
	s.Mean = s.Total / time.Duration(s.Count)
	s.P50 = t.quantile(s.Count, 0.50)
	s.P95 = t.quantile(s.Count, 0.95)
	s.P99 = t.quantile(s.Count, 0.99)
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func (t *Timer) quantile(count int64, q float64) time.Duration {
	target := int64(math.Ceil(q * float64(count)))
	var seen int64
	for i := 0; i < timerBuckets; i++ {
		seen += t.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(t.max.Load())
}

// histBuckets is the number of power-of-two value buckets of a
// Histogram: bucket i counts observations v with 2^(i−histZero−1) < v ≤
// 2^(i−histZero), i.e. exponents −32 … 31; the first bucket also absorbs
// zero and negative observations, the last everything larger.
const (
	histBuckets = 64
	histZero    = 32
)

// Histogram is a unitless value histogram with power-of-two buckets plus
// exact count/sum/min/max — the distribution companion to Counter and
// Gauge for quantities like duality gaps, iteration counts and per-slot
// churn. Lock-free and nil-safe like every other instrument.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
	minBits atomic.Uint64 // +Inf until first observation
	maxBits atomic.Uint64 // -Inf until first observation
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. NaN is dropped; ±Inf clamps into the edge
// buckets. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.count.Add(1)
	for {
		cur := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + v)
		if h.sumBits.CompareAndSwap(cur, next) {
			break
		}
	}
	for {
		cur := h.minBits.Load()
		if v >= math.Float64frombits(cur) || h.minBits.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
	for {
		cur := h.maxBits.Load()
		if v <= math.Float64frombits(cur) || h.maxBits.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[histIndex(v)].Add(1)
}

// histIndex maps a value to its bucket: the smallest i whose upper bound
// 2^(i−histZero) is ≥ v.
func histIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	// Frexp: v = f·2^exp with f ∈ [0.5, 1), so v ≤ 2^exp with equality
	// only at powers of two — exactly the "upper bound is inclusive" rule.
	_, exp := math.Frexp(v)
	i := exp + histZero
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// histUpperBound is bucket i's inclusive upper bound.
func histUpperBound(i int) float64 { return math.Ldexp(1, i-histZero) }

// HistogramStats is a point-in-time summary of a Histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// P50/P95/P99 are conservative power-of-two bucket upper bounds.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Stats summarises the histogram (zero value for nil or empty).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	s := HistogramStats{Count: h.count.Load(), Sum: math.Float64frombits(h.sumBits.Load())}
	if s.Count == 0 {
		return s
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = h.quantile(s.Count, 0.50)
	s.P95 = h.quantile(s.Count, 0.95)
	s.P99 = h.quantile(s.Count, 0.99)
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func (h *Histogram) quantile(count int64, q float64) float64 {
	target := int64(math.Ceil(q * float64(count)))
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			return histUpperBound(i)
		}
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Registry is a concurrency-safe namespace of instruments. Instruments
// are created on first use and live for the registry's lifetime, so
// callers should look them up once (package-level vars) rather than per
// operation.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// Default is the process-wide registry every solver layer reports into.
// The -metrics flags and the expvar endpoint read it.
var Default = NewRegistry()

// NewRegistry returns an empty registry (tests use private ones).
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Nil-safe
// (returns a nil instrument whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it if needed. Nil-safe.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = newTimer()
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it if needed. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Timers     map[string]TimerStats     `json:"timers,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Timers:     map[string]TimerStats{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Stats()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// WriteText renders the snapshot as an aligned table, instruments sorted
// by name — the -metrics flag output.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tvalue")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "%s\t%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "%s\t%g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		hs := s.Histograms[name]
		fmt.Fprintf(tw, "%s\tn=%d sum=%g mean=%g min=%g max=%g p50≤%g p95≤%g p99≤%g\n",
			name, hs.Count, hs.Sum, hs.Mean, hs.Min, hs.Max, hs.P50, hs.P95, hs.P99)
	}
	for _, name := range sortedKeys(s.Timers) {
		ts := s.Timers[name]
		fmt.Fprintf(tw, "%s\tn=%d total=%s mean=%s min=%s max=%s p50≤%s p95≤%s p99≤%s\n",
			name, ts.Count, round(ts.Total), round(ts.Mean), round(ts.Min), round(ts.Max), round(ts.P50), round(ts.P95), round(ts.P99))
	}
	return tw.Flush()
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
