// Metrics registry: named counters, gauges and timing histograms shared
// by every solver layer. Instruments are cheap lock-free atomics so the
// solvers keep them always on; whether anything *reads* them (the
// -metrics flag, the expvar endpoint) is the operator's choice. All
// instruments are nil-safe: methods on a nil instrument are no-ops, so a
// missing registry never needs guarding at the call site.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Nil-safe.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (last-write-wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// timerBuckets is the number of power-of-two latency buckets: bucket i
// counts observations with ceil(log2(d/µs)) = i, i.e. sub-microsecond
// through ~18 minutes; the last bucket absorbs everything longer.
const timerBuckets = 31

// Timer is a duration histogram with power-of-two microsecond buckets
// plus exact count/sum/min/max.
type Timer struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 until first observation
	max     atomic.Int64
	buckets [timerBuckets]atomic.Int64
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(math.MaxInt64)
	return t
}

// Observe records one duration. Nil-safe.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.sum.Add(ns)
	for {
		cur := t.min.Load()
		if ns >= cur || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := bits.Len64(uint64(ns) / uint64(time.Microsecond))
	if b >= timerBuckets {
		b = timerBuckets - 1
	}
	t.buckets[b].Add(1)
}

// Time runs fn and records its duration. Nil-safe (fn still runs).
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// TimerStats is a point-in-time summary of a Timer.
type TimerStats struct {
	Count int64         `json:"count"`
	Total time.Duration `json:"totalNanos"`
	Min   time.Duration `json:"minNanos"`
	Max   time.Duration `json:"maxNanos"`
	Mean  time.Duration `json:"meanNanos"`
	// P50 and P95 are estimated from the power-of-two histogram (upper
	// bucket bounds), so they are conservative to within a factor of two.
	P50 time.Duration `json:"p50Nanos"`
	P95 time.Duration `json:"p95Nanos"`
}

// Stats summarises the timer (zero value for nil or empty).
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	s := TimerStats{Count: t.count.Load(), Total: time.Duration(t.sum.Load())}
	if s.Count == 0 {
		return s
	}
	s.Min = time.Duration(t.min.Load())
	s.Max = time.Duration(t.max.Load())
	s.Mean = s.Total / time.Duration(s.Count)
	s.P50 = t.quantile(s.Count, 0.50)
	s.P95 = t.quantile(s.Count, 0.95)
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func (t *Timer) quantile(count int64, q float64) time.Duration {
	target := int64(math.Ceil(q * float64(count)))
	var seen int64
	for i := 0; i < timerBuckets; i++ {
		seen += t.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(t.max.Load())
}

// Registry is a concurrency-safe namespace of instruments. Instruments
// are created on first use and live for the registry's lifetime, so
// callers should look them up once (package-level vars) rather than per
// operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// Default is the process-wide registry every solver layer reports into.
// The -metrics flags and the expvar endpoint read it.
var Default = NewRegistry()

// NewRegistry returns an empty registry (tests use private ones).
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it if needed. Nil-safe
// (returns a nil instrument whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it if needed. Nil-safe.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = newTimer()
		r.timers[name] = t
	}
	return t
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]float64    `json:"gauges,omitempty"`
	Timers   map[string]TimerStats `json:"timers,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
		Timers:   map[string]TimerStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.Stats()
	}
	return s
}

// WriteText renders the snapshot as an aligned table, instruments sorted
// by name — the -metrics flag output.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tvalue")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "%s\t%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "%s\t%g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Timers) {
		ts := s.Timers[name]
		fmt.Fprintf(tw, "%s\tn=%d total=%s mean=%s min=%s max=%s p50≤%s p95≤%s\n",
			name, ts.Count, round(ts.Total), round(ts.Mean), round(ts.Min), round(ts.Max), round(ts.P50), round(ts.P95))
	}
	return tw.Flush()
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
