// Live debugging endpoint: expvar for the metrics registry, net/http/
// pprof for CPU/heap/goroutine profiles of long sweeps, a Prometheus
// text exposition of the registry at /metrics, and the solver flight
// recorder at /debug/solver.
package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var publishMu sync.Mutex

// PublishExpvar exposes the Default registry's snapshot under the
// "edgecache" expvar (GET /debug/vars). Idempotent: repeated calls —
// several Telemetry instances, repeated ServeDebug calls, tests that
// restart the debug server — are no-ops instead of tripping
// expvar.Publish's duplicate-name panic.
func PublishExpvar() {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get("edgecache") != nil {
		return
	}
	expvar.Publish("edgecache", expvar.Func(func() any {
		return Default.Snapshot()
	}))
}

// RegisterDebugHandlers mounts the debug surface on mux — the same
// handlers ServeDebug wires onto its private mux, reusable by services
// that already own an HTTP server (cmd/jocserve mounts them on its
// -debug-addr mux):
//
//	/debug/vars    expvar, including the Default metrics registry
//	/debug/pprof/  live CPU/heap/goroutine profiling
//	/metrics       Prometheus text exposition of the Default registry
//	/debug/solver  JSON dump of the solver flight recorder (obs.Flight)
//
// All handlers are safe under concurrent scrapes and concurrent solver
// activity: the registry snapshot and the flight recorder dump read
// under their own synchronisation.
func RegisterDebugHandlers(mux *http.ServeMux) {
	PublishExpvar()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/solver", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Flight.WriteJSON(w)
	})
}

// DebugServer is a running debug HTTP endpoint (see ServeDebug). Close
// shuts it down gracefully and waits for the serve goroutine to exit, so
// tests can assert no goroutine leaks across a start/stop cycle.
type DebugServer struct {
	srv      *http.Server
	addr     string
	done     chan struct{}
	closeOne sync.Once
	closeErr error
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060")
// serving:
//
//	/debug/vars    expvar, including the Default metrics registry
//	/debug/pprof/  live CPU/heap/goroutine profiling
//	/metrics       Prometheus text exposition of the Default registry
//	/debug/solver  JSON dump of the solver flight recorder (obs.Flight)
//
// It returns immediately; the bound address is Addr() (useful with
// ":0") and Close stops the server. The handlers live on a private mux,
// so repeated start/stop cycles never re-register on the default mux.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}

	mux := http.NewServeMux()
	RegisterDebugHandlers(mux)

	d := &DebugServer{
		srv:  &http.Server{Handler: mux},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ln)
	}()
	return d, nil
}

// Addr returns the server's bound address.
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.addr
}

// Close gracefully shuts the server down (bounded at five seconds, then
// hard-closed) and waits for the serve goroutine to exit. Nil-safe and
// idempotent.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	d.closeOne.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := d.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			err = d.srv.Close()
		}
		<-d.done
		d.closeErr = err
	})
	return d.closeErr
}
