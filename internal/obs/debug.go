// Live profiling endpoint: expvar for the metrics registry and
// net/http/pprof for CPU/heap/goroutine profiles of long sweeps.
package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
)

var publishOnce sync.Once

// PublishExpvar exposes the Default registry's snapshot under the
// "edgecache" expvar (GET /debug/vars). Safe to call repeatedly.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("edgecache", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060")
// serving /debug/vars (expvar, including the metrics registry) and
// /debug/pprof/ (live profiling). It returns the bound address — useful
// with ":0" — and never blocks; the server runs until the process exits.
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	go func() {
		// DefaultServeMux carries the pprof and expvar handlers.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
