package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestDebugSurfaceConcurrentScrapeAndDump hammers the whole debug
// surface — the Prometheus exposition, the expvar snapshot, the flight
// recorder's JSON dump and its text dump (the SIGQUIT handler's path) —
// while a writer goroutine emits metrics and flight events at full
// rate, the mix a live controller produces when a scrape, a solver and
// a signal-triggered dump collide. Run under -race (the Makefile's race
// target covers this package); the assertions only check the responses
// stay well-formed.
func TestDebugSurfaceConcurrentScrapeAndDump(t *testing.T) {
	d, err := ServeDebug("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The "solver": emits metric updates and flight-recorder events.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := Default.Counter("testconc.iters")
		h := Default.Histogram("testconc.gap")
		tm := Default.Timer("testconc.solve")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(float64(i % 100))
			tm.Observe(time.Duration(i%7) * time.Millisecond)
			Flight.Emit(Event{Type: "window_solve", Fields: Fields{
				"version": i % 3, "tau": i, "iterations": i % 25, "gap": 0.5,
			}})
			if i%64 == 0 {
				Flight.Emit(Event{Type: "dual_iteration", Fields: Fields{
					"iteration": i, "gap": 1.0 / float64(i+1),
				}})
			}
		}
	}()

	// Concurrent SIGQUIT-style dumps straight off the recorder.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = Flight.WriteText(io.Discard)
			_ = Flight.WriteJSON(io.Discard)
		}
	}()

	get := func(path string) error {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", d.Addr(), path))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}

	// Concurrent scrapers over every read endpoint.
	paths := []string{"/metrics", "/debug/solver", "/debug/vars"}
	errs := make(chan error, len(paths))
	for _, p := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := get(path); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(p)
	}
	for range paths {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegisterDebugHandlersOnCallerMux pins the reusable mounting path
// (the service mux of cmd/jocserve): the handlers work on a caller-owned
// mux, and repeated registration cycles across fresh muxes don't trip
// the expvar duplicate-publish panic.
func TestRegisterDebugHandlersOnCallerMux(t *testing.T) {
	for i := 0; i < 2; i++ {
		mux := http.NewServeMux()
		RegisterDebugHandlers(mux)
		req, err := http.NewRequest(http.MethodGet, "/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingWriter{header: make(http.Header)}
		mux.ServeHTTP(rec, req)
		if rec.status != 0 && rec.status != http.StatusOK {
			t.Fatalf("cycle %d: /metrics status %d", i, rec.status)
		}
		if len(rec.body) == 0 {
			t.Fatalf("cycle %d: /metrics wrote nothing", i)
		}
	}
}

type recordingWriter struct {
	header http.Header
	body   []byte
	status int
}

func (r *recordingWriter) Header() http.Header { return r.header }
func (r *recordingWriter) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}
func (r *recordingWriter) WriteHeader(status int) { r.status = status }
