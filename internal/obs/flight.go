// Solver flight recorder: a fixed-size ring buffer of the most recent
// per-iteration solver samples (dual gap, step, UB/LB) plus notable
// operational events (degradations, replans, retries, injected faults,
// audit violations). It answers "what was the solver doing just before
// things went wrong" without storing a full trace: install it as a
// telemetry sink (it composes with Tee), query it live at /debug/solver
// on the debug server, or dump it to stderr on error or SIGQUIT.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// IterSample is one retained solver_iteration observation.
type IterSample struct {
	// Seq is the recorder-global sequence number (monotonic across both
	// rings, so samples and events interleave chronologically).
	Seq  int64     `json:"seq"`
	Time time.Time `json:"ts"`
	// Iter is the dual iteration index l; LB/UB/Gap/Step are the
	// Algorithm 1 bookkeeping at that iteration.
	Iter int     `json:"iter"`
	LB   float64 `json:"lb"`
	UB   float64 `json:"ub"`
	Gap  float64 `json:"gap"`
	Step float64 `json:"step"`
}

// FlightEvent is one retained operational event.
type FlightEvent struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"ts"`
	Type   string    `json:"event"`
	Fields Fields    `json:"fields,omitempty"`
}

// FlightSnapshot is a point-in-time copy of the recorder, oldest first.
type FlightSnapshot struct {
	// Capacity is the ring size; Dropped counts samples that aged out.
	Capacity int   `json:"capacity"`
	Dropped  int64 `json:"dropped"`
	// Samples are the retained per-iteration solver samples; Events the
	// retained operational events.
	Samples []IterSample  `json:"samples"`
	Events  []FlightEvent `json:"events"`
}

// flightEventTypes are the operational event types worth retaining —
// the "something happened" vocabulary, not the per-iteration firehose
// (which the sample ring captures in its compact form).
var flightEventTypes = map[string]bool{
	"solve_degraded":  true,
	"replan":          true,
	"retry":           true,
	"fault_injected":  true,
	"audit_violation": true,
	"solver_done":     true,
	"controller_done": true,
	"run_summary":     true,
}

// FlightRecorder is a Sink retaining the last capacity solver samples
// and the last capacity operational events. Safe for concurrent use.
type FlightRecorder struct {
	mu       sync.Mutex
	capacity int
	seq      int64
	dropped  int64
	samples  []IterSample // ring; next is the write cursor
	sNext    int
	sFull    bool
	events   []FlightEvent
	eNext    int
	eFull    bool
}

// Flight is the process-wide recorder served at /debug/solver. It costs
// nothing until installed as a sink (the -flight flag or a Tee into a
// custom telemetry handle).
var Flight = NewFlightRecorder(512)

// NewFlightRecorder returns a recorder retaining the last capacity
// samples and events (minimum 16).
func NewFlightRecorder(capacity int) *FlightRecorder {
	r := &FlightRecorder{}
	r.init(capacity)
	return r
}

func (r *FlightRecorder) init(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	r.capacity = capacity
	r.samples = make([]IterSample, capacity)
	r.events = make([]FlightEvent, capacity)
	r.sNext, r.eNext = 0, 0
	r.sFull, r.eFull = false, false
	r.dropped = 0
}

// Resize discards the recorder's contents and sets a new ring capacity.
func (r *FlightRecorder) Resize(capacity int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init(capacity)
}

// Emit implements Sink: solver_iteration events land in the sample ring,
// notable operational events in the event ring, everything else is
// dropped. Field copies are shallow (event fields are plain scalars).
func (r *FlightRecorder) Emit(e Event) {
	if r == nil {
		return
	}
	if e.Type == "solver_iteration" {
		s := IterSample{
			Time: e.Time,
			Iter: fieldInt(e.Fields, "iter"),
			LB:   fieldFloat(e.Fields, "lb"),
			UB:   fieldFloat(e.Fields, "ub"),
			Gap:  fieldFloat(e.Fields, "gap"),
			Step: fieldFloat(e.Fields, "step"),
		}
		r.mu.Lock()
		r.seq++
		s.Seq = r.seq
		if r.sFull {
			r.dropped++
		}
		r.samples[r.sNext] = s
		r.sNext = (r.sNext + 1) % r.capacity
		if r.sNext == 0 {
			r.sFull = true
		}
		r.mu.Unlock()
		return
	}
	if !flightEventTypes[e.Type] {
		return
	}
	fields := make(Fields, len(e.Fields))
	for k, v := range e.Fields {
		fields[k] = v
	}
	r.mu.Lock()
	r.seq++
	r.events[r.eNext] = FlightEvent{Seq: r.seq, Time: e.Time, Type: e.Type, Fields: fields}
	r.eNext = (r.eNext + 1) % r.capacity
	if r.eNext == 0 {
		r.eFull = true
	}
	r.mu.Unlock()
}

// Snapshot copies the recorder's retained contents, oldest first.
func (r *FlightRecorder) Snapshot() FlightSnapshot {
	if r == nil {
		return FlightSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Non-nil slices so an empty snapshot serialises as [], not null.
	snap := FlightSnapshot{
		Capacity: r.capacity,
		Dropped:  r.dropped,
		Samples:  []IterSample{},
		Events:   []FlightEvent{},
	}
	start, count := 0, r.sNext
	if r.sFull {
		start, count = r.sNext, r.capacity
	}
	for i := 0; i < count; i++ {
		snap.Samples = append(snap.Samples, r.samples[(start+i)%r.capacity])
	}
	start, count = 0, r.eNext
	if r.eFull {
		start, count = r.eNext, r.capacity
	}
	for i := 0; i < count; i++ {
		snap.Events = append(snap.Events, r.events[(start+i)%r.capacity])
	}
	return snap
}

// WriteJSON dumps the snapshot as indented JSON — the /debug/solver
// response body.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText renders a compact human-readable dump (newest last) — the
// SIGQUIT / on-error output.
func (r *FlightRecorder) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	if _, err := fmt.Fprintf(w, "flight recorder: %d sample(s), %d event(s), %d dropped (capacity %d)\n",
		len(snap.Samples), len(snap.Events), snap.Dropped, snap.Capacity); err != nil {
		return err
	}
	for _, s := range snap.Samples {
		if _, err := fmt.Fprintf(w, "  #%d %s iter=%d lb=%.6g ub=%.6g gap=%.3g step=%.3g\n",
			s.Seq, s.Time.Format("15:04:05.000"), s.Iter, s.LB, s.UB, s.Gap, s.Step); err != nil {
			return err
		}
	}
	for _, e := range snap.Events {
		if _, err := fmt.Fprintf(w, "  #%d %s %s %v\n",
			e.Seq, e.Time.Format("15:04:05.000"), e.Type, e.Fields); err != nil {
			return err
		}
	}
	return nil
}

// fieldInt reads an int-ish event field (events built in-process carry
// Go ints; decoded JSONL carries float64).
func fieldInt(f Fields, key string) int {
	switch v := f[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return 0
}

func fieldFloat(f Fields, key string) float64 {
	switch v := f[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return 0
}
