package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer serialises writes so the test can hand a bytes.Buffer to
// concurrent emitters without racing inside the buffer itself — the
// interleaving under test is the sink's, not the buffer's.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestJSONLSinkConcurrentWritesStayLineAtomic(t *testing.T) {
	var out lockedBuffer
	sink := NewJSONL(&out)

	const goroutines, events = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				sink.Emit(Event{
					Time: time.Now(),
					Type: "solver_iteration",
					Fields: Fields{
						"iter":   i,
						"worker": g,
						"gap":    0.25,
						"pad":    strings.Repeat("x", 64),
					},
				})
			}
		}(g)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(strings.NewReader(out.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	perWorker := map[int]int{}
	lines := 0
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d interleaved/corrupt: %v\n%s", lines, err, sc.Text())
		}
		if rec["event"] != "solver_iteration" {
			t.Fatalf("line %d: unexpected event %v", lines, rec["event"])
		}
		perWorker[int(rec["worker"].(float64))]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != goroutines*events {
		t.Fatalf("got %d lines, want %d", lines, goroutines*events)
	}
	for g := 0; g < goroutines; g++ {
		if perWorker[g] != events {
			t.Fatalf("worker %d wrote %d lines, want %d", g, perWorker[g], events)
		}
	}
}

func TestEventSchemaRoundTrip(t *testing.T) {
	// Encode through the JSONL sink, decode, and re-inject into the
	// consumers that read decoded events (the flight recorder) — the
	// JSONL lines must round-trip into equivalent records.
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	now := time.Now().UTC().Truncate(time.Millisecond)
	sink.Emit(Event{Time: now, Type: "solver_iteration", Fields: Fields{
		"iter": 3, "lb": 10.5, "ub": 21.0, "gap": 0.5, "step": 0.1,
	}})
	sink.Emit(Event{Time: now, Type: "solve_degraded", Fields: Fields{
		"mode": "fallback", "tau": 7,
	}})

	rec := NewFlightRecorder(16)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		ts, err := time.Parse(time.RFC3339Nano, m["ts"].(string))
		if err != nil {
			t.Fatalf("ts field: %v", err)
		}
		typ := m["event"].(string)
		delete(m, "ts")
		delete(m, "event")
		rec.Emit(Event{Time: ts, Type: typ, Fields: m})
	}
	snap := rec.Snapshot()
	if len(snap.Samples) != 1 || len(snap.Events) != 1 {
		t.Fatalf("decoded snapshot %+v", snap)
	}
	s := snap.Samples[0]
	if s.Iter != 3 || s.LB != 10.5 || s.UB != 21 || s.Gap != 0.5 || s.Step != 0.1 {
		t.Fatalf("sample did not round-trip: %+v", s)
	}
	if !s.Time.Equal(now) {
		t.Fatalf("sample time %v != %v", s.Time, now)
	}
	if snap.Events[0].Fields["mode"] != "fallback" {
		t.Fatalf("event did not round-trip: %+v", snap.Events[0])
	}
}

func TestSpanEventMatchesJSONLSchema(t *testing.T) {
	// Spans mirrored into the event stream must serialise like any other
	// event and carry the joinable identifiers.
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := NewTracer(sink)
	s := tr.newSpan("solve", nil, false)
	s.Set("iterations", 4)
	s.End()

	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("span event line invalid: %v", err)
	}
	if m["event"] != "span" || m["span"] != "solve" {
		t.Fatalf("span event = %v", m)
	}
	for _, key := range []string{"span_id", "track", "dur_ms", "alloc_bytes", "iterations", "ts"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("span event missing %q: %v", key, m)
		}
	}
	if fmt.Sprintf("%v", m["iterations"]) != "4" {
		t.Fatalf("iterations = %v", m["iterations"])
	}
}
