// Hierarchical span tracing: the second-generation observability layer
// on top of the flat event stream. A Span is one timed region of solver
// work (a policy run, a window solve, a P1/P2 phase, a batch of dual
// iterations); spans nest through context propagation, so a trace of one
// run reconstructs exactly where the wall-clock and the allocations went.
//
// Cost model: tracing is off unless a *Tracer is installed in the
// context (WithTracer). With no tracer, StartSpan returns a nil *Span
// and the unchanged context — no allocation, no atomic, just one context
// lookup per solve-level call — and every Span method is nil-safe, so
// hot loops call Child/Set/End unconditionally. With a tracer, each span
// costs two timestamps, two cheap runtime/metrics reads (for the
// process-wide heap-allocation delta) and one append under a mutex at
// End.
//
// Like events and metrics, spans are strictly observational: they copy
// values out of the solver and never feed anything back, so same-seed
// runs are byte-identical with tracing on or off (a regression test in
// package sim asserts exactly this).
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span — the unit both exporters share.
type SpanRecord struct {
	// Name identifies the traced region ("run", "window_solve", ...).
	Name string `json:"name"`
	// ID is unique within the tracer; Parent is 0 for root spans.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Track groups spans that executed sequentially on one logical
	// thread of control (one FHC version, the main goroutine). It maps
	// to the tid of the Chrome trace-event export, so concurrent tracks
	// render as separate rows in Perfetto.
	Track int64 `json:"track"`
	// Start is the span's wall-clock start; Duration its extent.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNanos"`
	// AllocBytes is the process-wide heap-allocation delta over the
	// span. It attributes allocations exactly for serial phases; under
	// concurrent tracks it is an upper bound (all tracks observe the
	// same heap).
	AllocBytes uint64 `json:"allocBytes"`
	// Fields carries span attributes (iteration numbers, gaps, policy
	// names) — same vocabulary as event fields.
	Fields Fields `json:"fields,omitempty"`
}

// Tracer collects completed spans. Create one per traced run
// (NewTracer), install it with WithTracer, and export with
// WriteChromeTrace (Perfetto) or read Records directly. Safe for
// concurrent use: parallel FHC versions end spans concurrently.
type Tracer struct {
	sink      Sink // optional: completed spans mirrored as "span" events
	epoch     time.Time
	nextID    atomic.Uint64
	nextTrack atomic.Int64

	mu      sync.Mutex
	records []SpanRecord
}

// NewTracer returns an empty tracer. When sink is non-nil every
// completed span is additionally emitted into it as a "span" event (one
// JSONL line per span under the -trace flag), so the flat event stream
// and the hierarchical trace stay joinable on span IDs.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Records returns a copy of every completed span, in completion order.
func (tr *Tracer) Records() []SpanRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]SpanRecord(nil), tr.records...)
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer installs the tracer in the context: spans started from the
// returned context (and its descendants) are recorded. A nil tracer
// returns ctx unchanged.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom returns the context's tracer, or nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// SpanFrom returns the context's current span (nil when tracing is off
// or no span has been started yet).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a span as a child of the context's current span (a
// root span when there is none), returning a derived context carrying
// it. When no tracer is installed it returns (ctx, nil) at zero cost;
// all Span methods are nil-safe, so callers never guard.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, name, false)
}

// StartTrack is StartSpan on a fresh track: use it at the entry point of
// a concurrent strand of work (one FHC version) so its spans render as
// their own row instead of interleaving with siblings.
func StartTrack(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, name, true)
}

func startSpan(ctx context.Context, name string, newTrack bool) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	var tr *Tracer
	if parent != nil {
		tr = parent.tracer
	} else {
		tr = TracerFrom(ctx)
	}
	if tr == nil {
		return ctx, nil
	}
	s := tr.newSpan(name, parent, newTrack)
	return context.WithValue(ctx, spanKey{}, s), s
}

func (tr *Tracer) newSpan(name string, parent *Span, newTrack bool) *Span {
	s := &Span{tracer: tr, name: name, id: tr.nextID.Add(1)}
	if parent != nil {
		s.parent = parent.id
		s.track = parent.track
	}
	if parent == nil || newTrack {
		s.track = tr.nextTrack.Add(1) - 1
	}
	s.start = time.Now()
	s.startAllocs = heapAllocs()
	return s
}

// Span is one in-flight traced region. The nil span is the disabled
// no-op; a span belongs to the goroutine that started it (Set is not
// synchronised) while End is idempotent and safe to race with exports.
type Span struct {
	tracer      *Tracer
	name        string
	id, parent  uint64
	track       int64
	start       time.Time
	startAllocs uint64
	fields      Fields
	ended       atomic.Bool
}

// Child starts a sub-span on the same track without deriving a context —
// the zero-lookup form for hot loops that fan a known hierarchy out of
// one parent. Nil-safe: a nil receiver returns a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s, false)
}

// Set attaches one attribute (plain scalars, like event fields).
// Nil-safe; must not race with End.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	if s.fields == nil {
		s.fields = make(Fields, 4)
	}
	s.fields[key] = v
}

// End completes the span and hands the record to the tracer. Idempotent
// and nil-safe; spans never ended are simply never recorded.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	end := time.Now()
	rec := SpanRecord{
		Name:       s.name,
		ID:         s.id,
		Parent:     s.parent,
		Track:      s.track,
		Start:      s.start,
		Duration:   end.Sub(s.start),
		AllocBytes: heapAllocs() - s.startAllocs,
		Fields:     s.fields,
	}
	tr := s.tracer
	tr.mu.Lock()
	tr.records = append(tr.records, rec)
	tr.mu.Unlock()
	if tr.sink != nil {
		tr.sink.Emit(Event{Time: end, Type: "span", Fields: rec.eventFields()})
	}
}

// eventFields flattens the record into the event-stream vocabulary.
func (r SpanRecord) eventFields() Fields {
	f := Fields{
		"span":        r.Name,
		"span_id":     r.ID,
		"track":       r.Track,
		"dur_ms":      float64(r.Duration) / float64(time.Millisecond),
		"alloc_bytes": r.AllocBytes,
	}
	if r.Parent != 0 {
		f["parent_id"] = r.Parent
	}
	for k, v := range r.Fields {
		if _, clash := f[k]; !clash {
			f[k] = v
		}
	}
	return f
}

// heapAllocs reads the cumulative heap-allocation byte counter. Unlike
// runtime.ReadMemStats this does not stop the world, so per-span reads
// are cheap enough for window-solve granularity.
func heapAllocs() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// chromeEvent is one Chrome trace-event record ("X" = complete event,
// "M" = metadata). The format is the JSON object flavour understood by
// Perfetto and chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds since trace epoch
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports every completed span in Chrome trace-event
// format (the -trace-spans flag): load the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing to browse the hierarchy.
// Tracks map to tids, span attributes and IDs land in args, and each
// track gets a thread_name metadata record.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	if tr == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	records := tr.Records()
	sort.SliceStable(records, func(i, j int) bool { return records[i].Start.Before(records[j].Start) })

	events := make([]chromeEvent, 0, len(records)+8)
	tracks := map[int64]bool{}
	for _, r := range records {
		if !tracks[r.Track] {
			tracks[r.Track] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: r.Track,
				Args: map[string]any{"name": fmt.Sprintf("track %d", r.Track)},
			})
		}
		args := map[string]any{"id": r.ID, "alloc_bytes": r.AllocBytes}
		if r.Parent != 0 {
			args["parent"] = r.Parent
		}
		for k, v := range r.Fields {
			if _, clash := args[k]; !clash {
				args[k] = v
			}
		}
		events = append(events, chromeEvent{
			Name:  r.Name,
			Cat:   "edgecache",
			Phase: "X",
			TS:    float64(r.Start.Sub(tr.epoch)) / float64(time.Microsecond),
			Dur:   float64(r.Duration) / float64(time.Microsecond),
			PID:   1,
			TID:   r.Track,
			Args:  args,
		})
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
