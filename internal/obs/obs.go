// Package obs is the solver telemetry layer: a structured event stream
// and a metrics registry threaded through the primal-dual solver
// (package core), the online controllers (package online), the
// simulation harness (package sim) and the experiment driver.
//
// Telemetry is strictly observational: events carry copies of solver
// state and instruments are atomic accumulators, so enabling or
// disabling telemetry never changes a solver's arithmetic or its
// iteration order (a regression test in package sim asserts exactly
// this). The disabled path is allocation-free: a nil *Telemetry handle
// is the no-op default, Enabled() on it is false, and every hot loop
// guards event construction behind that check.
//
// Event vocabulary (field-by-field schema in DESIGN.md §6):
//
//	solver_iteration  one dual iteration of Algorithm 1 (LB/UB/gap/step)
//	solver_done       end-of-solve summary
//	window_solve      one FHC window solve inside an online controller
//	slot_decision     one committed slot (rounding, repairs, churn)
//	run_summary       one evaluated policy run (package sim)
//	progress          free-text progress from the experiment driver
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Fields is an event's type-specific payload. Values should be plain
// scalars (numbers, strings, bools) so every sink can render them.
type Fields map[string]any

// Event is one structured telemetry record.
type Event struct {
	// Time is the emission timestamp (wall clock).
	Time time.Time
	// Type names the event ("solver_iteration", "slot_decision", ...).
	Type string
	// Fields is the type-specific payload.
	Fields Fields
}

// Sink consumes events. Implementations must be safe for concurrent use:
// parallel FHC versions and parallel slot solves emit concurrently.
type Sink interface {
	Emit(e Event)
}

// Telemetry bundles an event sink with a metrics registry. The nil
// handle is the no-op default: Emit on it does nothing and Registry
// falls back to the process-wide Default registry.
type Telemetry struct {
	sink Sink
	reg  *Registry
}

// New returns a telemetry handle emitting into sink and recording
// metrics into reg (nil reg selects the Default registry).
func New(sink Sink, reg *Registry) *Telemetry {
	return &Telemetry{sink: sink, reg: reg}
}

// Enabled reports whether events are being recorded. Hot paths must
// guard Fields construction behind this check to keep the disabled path
// allocation-free.
func (t *Telemetry) Enabled() bool { return t != nil && t.sink != nil }

// Emit sends one event, stamping the current time. No-op when disabled.
func (t *Telemetry) Emit(typ string, fields Fields) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Emit(Event{Time: time.Now(), Type: typ, Fields: fields})
}

// Sink returns the underlying sink (nil when disabled).
func (t *Telemetry) Sink() Sink {
	if t == nil {
		return nil
	}
	return t.sink
}

// Registry returns the metrics registry instruments should report into;
// the Default registry when the handle is nil or carries none.
func (t *Telemetry) Registry() *Registry {
	if t == nil || t.reg == nil {
		return Default
	}
	return t.reg
}

// JSONLSink writes one JSON object per event: the ts and event keys plus
// the event's fields, keys sorted (encoding/json map ordering), one line
// per event. Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
}

// NewJSONL returns a sink writing JSON Lines to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w), w: w}
}

// Emit writes the event as one JSON line. Marshal errors are swallowed:
// telemetry must never fail a solve.
func (s *JSONLSink) Emit(e Event) {
	rec := make(map[string]any, len(e.Fields)+2)
	for k, v := range e.Fields {
		rec[k] = v
	}
	rec["ts"] = e.Time.Format(time.RFC3339Nano)
	rec["event"] = e.Type
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(rec)
}

// Close flushes and closes the underlying writer when it supports it.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	type flusher interface{ Flush() error }
	if f, ok := s.w.(flusher); ok {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	if c, ok := s.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// TextSink renders events as single human-readable lines — the adapter
// that keeps plain-text progress output working now that progress is a
// structured event. When types are given only those event types are
// rendered; progress events print their msg field bare.
type TextSink struct {
	mu    sync.Mutex
	w     io.Writer
	types map[string]bool
}

// NewText returns a text sink writing to w, filtered to the given event
// types (none = all).
func NewText(w io.Writer, types ...string) *TextSink {
	s := &TextSink{w: w}
	if len(types) > 0 {
		s.types = make(map[string]bool, len(types))
		for _, t := range types {
			s.types[t] = true
		}
	}
	return s
}

// Emit renders the event as one line.
func (s *TextSink) Emit(e Event) {
	if s.types != nil && !s.types[e.Type] {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Type == "progress" {
		if msg, ok := e.Fields["msg"].(string); ok {
			fmt.Fprintln(s.w, msg)
			return
		}
	}
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(s.w, "%s", e.Type)
	for _, k := range keys {
		fmt.Fprintf(s.w, " %s=%v", k, e.Fields[k])
	}
	fmt.Fprintln(s.w)
}

// TeeSink fans every event out to several sinks.
type TeeSink struct{ sinks []Sink }

// Tee returns a sink duplicating events to all non-nil sinks. A single
// sink (after dropping nils) is returned as-is.
func Tee(sinks ...Sink) Sink {
	var keep []Sink
	for _, s := range sinks {
		if s != nil {
			keep = append(keep, s)
		}
	}
	if len(keep) == 1 {
		return keep[0]
	}
	return &TeeSink{sinks: keep}
}

// Emit forwards to every sink.
func (s *TeeSink) Emit(e Event) {
	for _, dst := range s.sinks {
		dst.Emit(e)
	}
}

// Collector buffers events in memory — the test sink.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

// Events returns a copy of everything collected.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// ByType returns collected events of one type, in emission order.
func (c *Collector) ByType(typ string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, e := range c.events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}
