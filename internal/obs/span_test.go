package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanDisabledIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "solve")
	if s != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without a tracer must return the context unchanged")
	}
	// Every method on the nil span is a free no-op.
	s.Set("k", 1)
	c := s.Child("child")
	if c != nil {
		t.Fatal("nil span's Child must be nil")
	}
	c.End()
	s.End()
}

func TestSpanHierarchyAndRecords(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "run")
	root.Set("policy", "test")
	_, child := StartSpan(ctx, "window_solve")
	grand := child.Child("caching")
	grand.Set("iter", 1)
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	run, ws, ca := byName["run"], byName["window_solve"], byName["caching"]
	if run.Parent != 0 {
		t.Fatalf("run parent = %d, want 0", run.Parent)
	}
	if ws.Parent != run.ID {
		t.Fatalf("window_solve parent = %d, want %d", ws.Parent, run.ID)
	}
	if ca.Parent != ws.ID {
		t.Fatalf("caching parent = %d, want %d", ca.Parent, ws.ID)
	}
	if run.Track != ws.Track || ws.Track != ca.Track {
		t.Fatal("same-strand spans must share a track")
	}
	if run.Fields["policy"] != "test" {
		t.Fatalf("run fields = %v", run.Fields)
	}
	if ca.Fields["iter"] != 1 {
		t.Fatalf("caching fields = %v", ca.Fields)
	}
}

func TestStartTrackSeparatesRows(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	_, v0 := StartTrack(ctx, "version")
	_, v1 := StartTrack(ctx, "version")
	v0.End()
	v1.End()
	root.End()
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	tracks := map[int64]bool{}
	for _, r := range recs {
		if r.Name == "version" {
			tracks[r.Track] = true
			if r.Parent == 0 {
				t.Fatal("version spans must keep their parent across tracks")
			}
		}
	}
	if len(tracks) != 2 {
		t.Fatalf("version spans share a track: %v", tracks)
	}
}

func TestSpanMirroredAsEvent(t *testing.T) {
	var col Collector
	tr := NewTracer(&col)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "solve")
	s.Set("iterations", 7)
	s.End()

	evs := col.ByType("span")
	if len(evs) != 1 {
		t.Fatalf("got %d span events, want 1", len(evs))
	}
	f := evs[0].Fields
	if f["span"] != "solve" || f["iterations"] != 7 {
		t.Fatalf("span event fields = %v", f)
	}
	if _, ok := f["span_id"]; !ok {
		t.Fatal("span event missing span_id")
	}
}

func TestWriteChromeTraceIsValidAndNested(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "run")
	ctx2, mid := StartSpan(ctx, "window_solve")
	_, leaf := StartSpan(ctx2, "caching")
	time.Sleep(time.Millisecond)
	leaf.End()
	mid.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int64          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace output is not valid JSON: %v", err)
	}
	ids := map[string]float64{}
	parents := map[string]float64{}
	var complete int
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		complete++
		if e.TS < 0 || e.Dur < 0 {
			t.Fatalf("event %s: negative ts/dur", e.Name)
		}
		ids[e.Name] = e.Args["id"].(float64)
		if p, ok := e.Args["parent"].(float64); ok {
			parents[e.Name] = p
		}
	}
	if complete != 3 {
		t.Fatalf("got %d complete events, want 3", complete)
	}
	if parents["window_solve"] != ids["run"] || parents["caching"] != ids["window_solve"] {
		t.Fatalf("parent chain broken: ids=%v parents=%v", ids, parents)
	}
	if _, rooted := parents["run"]; rooted {
		t.Fatal("root span must have no parent arg")
	}
}

func TestSpanRecordRoundTrip(t *testing.T) {
	rec := SpanRecord{
		Name: "solve", ID: 3, Parent: 1, Track: 2,
		Start: time.Now().Truncate(0), Duration: 42 * time.Millisecond,
		AllocBytes: 1024, Fields: Fields{"gap": 0.5},
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != rec.Name || back.ID != rec.ID || back.Parent != rec.Parent ||
		back.Track != rec.Track || back.Duration != rec.Duration || back.AllocBytes != rec.AllocBytes {
		t.Fatalf("round trip mismatch: %+v != %+v", back, rec)
	}
	if back.Fields["gap"] != 0.5 {
		t.Fatalf("fields mismatch: %v", back.Fields)
	}
}
