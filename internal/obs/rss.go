package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// PeakRSSBytes returns the process's peak resident set size in bytes —
// the figure the web-scale acceptance criteria are stated in. On Linux it
// reads VmHWM from /proc/self/status (the kernel's high-water mark, which
// includes every allocation source: Go heap, stacks, mmapped runtime
// spans). Elsewhere, or if the file is unreadable, it falls back to the
// Go runtime's own high-water mark (MemStats.Sys), which undercounts
// non-runtime memory but preserves the order of magnitude. The second
// return reports whether the exact kernel figure was available.
func PeakRSSBytes() (uint64, bool) {
	if b, ok := procPeakRSS(); ok {
		return b, true
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys, false
}

func procPeakRSS() (uint64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "VmHWM:"))
		if len(fields) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}
