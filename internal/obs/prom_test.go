package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"core.p1_solve":  "edgecache_core_p1_solve",
		"fault.retries":  "edgecache_fault_retries",
		"weird-name.x+y": "edgecache_weird_name_x_y",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.gaps")
	for _, v := range []float64{0.001, 0.002, 0.004, 0.5, 1, 2, 100} {
		h.Observe(v)
	}
	st := h.Stats()
	if st.Count != 7 {
		t.Fatalf("count = %d, want 7", st.Count)
	}
	if st.Min != 0.001 || st.Max != 100 {
		t.Fatalf("min/max = %g/%g", st.Min, st.Max)
	}
	// Bucketed quantiles are conservative (bucket upper bounds): p50 of
	// {…,0.004,0.5,…} lands in the (0.25, 0.5] bucket.
	if st.P50 < 0.004 || st.P50 > 1 {
		t.Fatalf("p50 = %g out of plausible range", st.P50)
	}
	if st.P99 < st.P95 || st.P95 < st.P50 {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", st.P50, st.P95, st.P99)
	}
	// NaN observations are dropped, not poisoning the sum.
	before := h.Stats().Sum
	h.Observe(nan())
	if got := h.Stats(); got.Count != 7 || got.Sum != before {
		t.Fatalf("NaN observation changed stats: %+v", got)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.solves").Add(3)
	r.Gauge("core.last_gap").Set(0.25)
	tm := r.Timer("core.p1_solve")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	h := r.Histogram("core.final_gap")
	h.Observe(0.01)
	h.Observe(0.02)
	h.Observe(4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE edgecache_core_solves_total counter",
		"edgecache_core_solves_total 3",
		"# TYPE edgecache_core_last_gap gauge",
		"edgecache_core_last_gap 0.25",
		"# TYPE edgecache_core_p1_solve_seconds histogram",
		"edgecache_core_p1_solve_seconds_count 2",
		"# TYPE edgecache_core_final_gap histogram",
		"edgecache_core_final_gap_count 3",
		`edgecache_core_final_gap_bucket{le="+Inf"} 3`,
		`edgecache_core_final_gap_quantile{quantile="0.5"}`,
		`edgecache_core_p1_solve_seconds_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Structural check: every line is either a comment or "name[{labels}] value"
	// with a parseable float value, and _bucket counts are cumulative.
	var lastCum int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.HasPrefix(fields[0], "edgecache_core_final_gap_bucket") {
			c, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			if c < lastCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastCum = c
		}
	}
	if lastCum != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", lastCum)
	}
}

func TestWritePrometheusEmptyAndNil(t *testing.T) {
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	// Empty instruments still render valid families (count 0, no quantiles).
	r.Timer("t.empty")
	r.Histogram("h.empty")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "edgecache_h_empty_count 0") {
		t.Fatalf("empty histogram not rendered:\n%s", out)
	}
	if strings.Contains(out, "h_empty_quantile") {
		t.Fatalf("empty histogram must not emit quantiles:\n%s", out)
	}
}
