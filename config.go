package edgecache

import (
	"encoding/json"
	"fmt"
	"io"
)

// ScenarioConfig is the serialisable form of a Scenario, so experiments
// can be pinned in version control and replayed bit-for-bit. Zero-valued
// fields inherit the paper defaults on load.
type ScenarioConfig struct {
	// SBS, Catalogue, Classes and Horizon are the principal dimensions
	// (N, K, M, T).
	SBS       int `json:"sbs"`
	Catalogue int `json:"catalogue"`
	Classes   int `json:"classes"`
	Horizon   int `json:"horizon"`
	// Cache and Bandwidth are C and B per SBS.
	Cache     int     `json:"cache"`
	Bandwidth float64 `json:"bandwidth"`
	// Beta is the replacement cost β.
	Beta float64 `json:"beta"`
	// ZipfAlpha and ZipfQ shape content popularity.
	ZipfAlpha float64 `json:"zipfAlpha"`
	ZipfQ     float64 `json:"zipfQ"`
	// MaxDensity caps per-class demand density.
	MaxDensity float64 `json:"maxDensity"`
	// Jitter is the temporal demand variation σ.
	Jitter float64 `json:"jitter"`
	// DriftPeriod rotates popularity ranks every so many slots (0 = off).
	DriftPeriod int `json:"driftPeriod"`
	// DiurnalAmplitude and DiurnalPeriod modulate total demand
	// sinusoidally (day/night cycle); amplitude 0 disables.
	DiurnalAmplitude float64 `json:"diurnalAmplitude"`
	DiurnalPeriod    int     `json:"diurnalPeriod"`
	// SBSWeightRatio sets ŵ = ratio·ω.
	SBSWeightRatio float64 `json:"sbsWeightRatio"`
	// Eta is the prediction noise η.
	Eta float64 `json:"eta"`
	// Seed pins the random workload.
	Seed uint64 `json:"seed"`
}

// Config exports the scenario's current settings.
func (s *Scenario) Config() ScenarioConfig {
	return ScenarioConfig{
		SBS:              s.cfg.N,
		Catalogue:        s.cfg.K,
		Classes:          s.cfg.ClassesPerSBS,
		Horizon:          s.cfg.T,
		Cache:            s.cfg.CacheCap,
		Bandwidth:        s.cfg.Bandwidth,
		Beta:             s.cfg.Beta,
		ZipfAlpha:        s.cfg.Workload.Zipf.Alpha,
		ZipfQ:            s.cfg.Workload.Zipf.Q,
		MaxDensity:       s.cfg.Workload.MaxDensity,
		Jitter:           s.cfg.Workload.Jitter,
		DriftPeriod:      s.cfg.Workload.DriftPeriod,
		DiurnalAmplitude: s.cfg.Workload.DiurnalAmplitude,
		DiurnalPeriod:    s.cfg.Workload.DiurnalPeriod,
		SBSWeightRatio:   s.cfg.OmegaSBSRatio,
		Eta:              s.eta,
		Seed:             s.cfg.Seed,
	}
}

// FromConfig builds a scenario from a saved config; zero-valued principal
// fields fall back to the paper defaults. Demand transforms are code, not
// data — they do not round-trip.
func FromConfig(c ScenarioConfig) *Scenario {
	s := PaperScenario()
	if c.SBS > 0 {
		s.cfg.N = c.SBS
	}
	if c.Catalogue > 0 {
		s.cfg.K = c.Catalogue
	}
	if c.Classes > 0 {
		s.cfg.ClassesPerSBS = c.Classes
	}
	if c.Horizon > 0 {
		s.cfg.T = c.Horizon
	}
	if c.Cache > 0 {
		s.cfg.CacheCap = c.Cache
	}
	if c.Bandwidth > 0 {
		s.cfg.Bandwidth = c.Bandwidth
	}
	if c.Beta > 0 {
		s.cfg.Beta = c.Beta
	}
	if c.ZipfAlpha > 0 {
		s.cfg.Workload.Zipf.Alpha = c.ZipfAlpha
	}
	if c.ZipfQ > 0 {
		s.cfg.Workload.Zipf.Q = c.ZipfQ
	}
	if c.MaxDensity > 0 {
		s.cfg.Workload.MaxDensity = c.MaxDensity
	}
	if c.Jitter > 0 {
		s.cfg.Workload.Jitter = c.Jitter
	}
	if c.DriftPeriod > 0 {
		s.cfg.Workload.DriftPeriod = c.DriftPeriod
	}
	if c.DiurnalAmplitude > 0 {
		s.cfg.Workload.DiurnalAmplitude = c.DiurnalAmplitude
		s.cfg.Workload.DiurnalPeriod = c.DiurnalPeriod
	}
	if c.SBSWeightRatio > 0 {
		s.cfg.OmegaSBSRatio = c.SBSWeightRatio
	}
	if c.Eta > 0 {
		s.eta = c.Eta
	}
	if c.Seed > 0 {
		s.cfg.Seed = c.Seed
	}
	return s
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Config()); err != nil {
		return fmt.Errorf("edgecache: save scenario: %w", err)
	}
	return nil
}

// LoadScenario reads a JSON scenario config.
func LoadScenario(r io.Reader) (*Scenario, error) {
	var c ScenarioConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("edgecache: load scenario: %w", err)
	}
	return FromConfig(c), nil
}
