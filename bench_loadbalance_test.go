// Load-balancing (P2) kernel benchmarks: the FISTA-vs-PGD ablation, the
// box-knapsack projection substrate, greedy recovery, and the dual-sweep
// workspace path with fixed-point slot skips (DESIGN.md §12).
package edgecache_test

import (
	"context"
	"math/rand/v2"
	"testing"

	"edgecache/internal/convex"
	"edgecache/internal/loadbalance"
	"edgecache/internal/model"
	"edgecache/internal/projection"
	"edgecache/internal/workload"
)

// benchSlotProblem builds a paper-scale P2 slot problem (30 classes × 30
// contents) with an active bandwidth constraint.
func benchSlotProblem() *loadbalance.SlotProblem {
	rng := rand.New(rand.NewPCG(3, 4))
	m, k := 30, 30
	p := &loadbalance.SlotProblem{
		M: m, K: k,
		Lambda:    make([]float64, m*k),
		OmegaBS:   make([]float64, m),
		OmegaSBS:  make([]float64, m),
		Bandwidth: 30,
		Mu:        make([]float64, m*k),
	}
	for i := range p.Lambda {
		p.Lambda[i] = rng.Float64() * 0.15
	}
	for i := range p.OmegaBS {
		p.OmegaBS[i] = rng.Float64()
	}
	for i := range p.Mu {
		p.Mu[i] = rng.Float64() * 5
	}
	return p
}

func BenchmarkP2_FISTAvsPGD(b *testing.B) {
	p := benchSlotProblem()
	for _, method := range []convex.Method{convex.FISTA, convex.PGD} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Solve(nil, convex.Options{Method: method, MaxIter: 600, StepTol: 1e-6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProjection_BoxKnapsack(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 900
	z := make([]float64, n)
	lo := make([]float64, n)
	hi := make([]float64, n)
	c := make([]float64, n)
	for i := range z {
		z[i] = rng.Float64() * 2
		hi[i] = 1
		c[i] = rng.Float64() * 0.2
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := projection.BoxKnapsack(dst, z, lo, hi, c, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadBalance_GreedyRecovery(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 2
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := model.NewCachePlan(in.N, in.K)
	for k := 0; k < in.CacheCap[0]; k++ {
		x[0][k] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loadbalance.OptimalGivenPlacement(in, 0, x, convex.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP2_DualSweep compares one full dual iteration of P2 (all T×N
// slot solves) on the per-call path ("fresh": bind + solve, what a cold
// SolveAll pays), a pre-bound workspace ("reused": the steady-state dual
// iteration of Algorithm 1, zero allocations), and the delta-aware sweep
// ("dirty": only two μ rows moved since the last iteration, every other
// slot sitting at a certified fixed point is skipped — the late-dual-loop
// steady state, also zero allocations).
func BenchmarkP2_DualSweep(b *testing.B) {
	cfg := workload.PaperDefault()
	cfg.T = 10
	cfg.K = 12
	cfg.ClassesPerSBS = 8
	cfg.Bandwidth = 8
	in, err := workload.BuildInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mu := make([][][]float64, in.T)
	rng := rand.New(rand.NewPCG(51, 52))
	for t := range mu {
		mu[t] = make([][]float64, in.N)
		for n := range mu[t] {
			mu[t][n] = make([]float64, in.Classes[n]*in.K)
			for i := range mu[t][n] {
				mu[t][n][i] = rng.Float64()
			}
		}
	}
	opts := convex.Options{MaxIter: 600, StepTol: 1e-6}

	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := loadbalance.SolveAll(context.Background(), in, mu, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		ws := loadbalance.NewWorkspace()
		ws.Bind(in)
		if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty", func(b *testing.B) {
		ws := loadbalance.NewWorkspace()
		ws.Bind(in)
		// Two passes: the first converges the slots, the second certifies
		// their fixed points so clean slots become skippable.
		for j := 0; j < 2; j++ {
			if _, err := ws.SolveDual(context.Background(), mu, opts); err != nil {
				b.Fatal(err)
			}
		}
		dirty := make([][]bool, in.T)
		for t := range dirty {
			dirty[t] = make([]bool, in.N)
		}
		step := func() {
			for t := range dirty {
				for n := range dirty[t] {
					dirty[t][n] = false
				}
			}
			for j := 0; j < 2; j++ {
				t, n := rng.IntN(in.T), rng.IntN(in.N)
				row := mu[t][n]
				row[rng.IntN(len(row))] = rng.Float64()
				dirty[t][n] = true
			}
			if _, err := ws.SolveDualDirty(context.Background(), mu, opts, dirty); err != nil {
				b.Fatal(err)
			}
		}
		// Flush amortized growth so the timed loop measures the
		// allocation-free steady state.
		for i := 0; i < 8; i++ {
			step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
}
