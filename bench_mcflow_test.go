// Min-cost-flow kernel benchmarks: the successive-shortest-paths solver
// that backs every P1 placement, and the delta-aware Resolve path that
// re-optimises it between dual iterations (DESIGN.md §12).
package edgecache_test

import (
	"math/rand/v2"
	"testing"

	"edgecache/internal/mcflow"
)

func BenchmarkMCFlow_SuccessiveShortestPaths(b *testing.B) {
	// A layered DAG the size of a paper-scale P1 window network
	// (~600 nodes), with mixed-sign costs.
	rng := rand.New(rand.NewPCG(7, 8))
	const layers, width = 30, 20
	build := func() *mcflow.Graph {
		g := mcflow.NewGraph(layers*width + 2)
		src, snk := layers*width, layers*width+1
		for i := 0; i < width; i++ {
			g.AddArc(src, i, 1, 0)
			g.AddArc((layers-1)*width+i, snk, 1, 0)
		}
		for l := 0; l+1 < layers; l++ {
			for i := 0; i < width; i++ {
				for _, j := range []int{i, (i + 1) % width} {
					g.AddArc(l*width+i, (l+1)*width+j, 1, rng.Float64()*4-1)
				}
			}
		}
		return g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := build()
		if _, err := g.Solve(layers*width, layers*width+1, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCFlow_Resolve measures the incremental re-optimisation that
// dual iterations lean on: after a warm solve, a handful of arc costs
// move and the graph is re-solved. "fresh" pays Reset + SetCost + Solve
// (the pre-incremental path); "incremental" pays SetCost + Resolve, which
// keeps the previous flow whenever the uniqueness certificate holds and
// otherwise falls back to the fresh path internally — bit-identical
// results either way (TestResolveMatchesFresh).
func BenchmarkMCFlow_Resolve(b *testing.B) {
	const layers, width = 30, 20
	const src, snk = layers * width, layers*width + 1
	type net struct {
		g     *mcflow.Graph
		arcs  []mcflow.Arc
		costs []float64
	}
	build := func(rng *rand.Rand) *net {
		n := &net{g: mcflow.NewGraph(layers*width + 2)}
		for i := 0; i < width; i++ {
			n.g.AddArc(src, i, 1, 0)
			n.g.AddArc((layers-1)*width+i, snk, 1, 0)
		}
		for l := 0; l+1 < layers; l++ {
			for i := 0; i < width; i++ {
				for _, j := range []int{i, (i + 1) % width} {
					c := rng.Float64()*4 - 1
					n.arcs = append(n.arcs, n.g.AddArc(l*width+i, (l+1)*width+j, 1, c))
					n.costs = append(n.costs, c)
				}
			}
		}
		return n
	}
	perturb := func(rng *rand.Rand, n *net) {
		for j := 0; j < 3; j++ {
			i := rng.IntN(len(n.arcs))
			n.costs[i] += rng.Float64()*0.2 - 0.1
			n.g.SetCost(n.arcs[i], n.costs[i])
		}
	}

	b.Run("fresh", func(b *testing.B) {
		rng := rand.New(rand.NewPCG(11, 12))
		n := build(rng)
		g := n.g
		if _, err := g.Solve(src, snk, 5); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			perturb(rng, n)
			g.Reset()
			if _, err := g.Solve(src, snk, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		rng := rand.New(rand.NewPCG(11, 12))
		n := build(rng)
		g := n.g
		if _, err := g.Solve(src, snk, 5); err != nil {
			b.Fatal(err)
		}
		// Flush amortized growth (dirty-list backing) so the timed loop
		// measures the allocation-free steady state.
		for i := 0; i < 8; i++ {
			perturb(rng, n)
			if _, err := g.Resolve(src, snk, 5); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			perturb(rng, n)
			if _, err := g.Resolve(src, snk, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}
