// Package edgecache is a library for joint online edge caching and load
// balancing in cache-enabled cellular networks, reproducing Zeng, Huang,
// Liu & Yang, "Joint Online Edge Caching and Load Balancing for Mobile
// Data Offloading in 5G Networks" (ICDCS 2019).
//
// The model: a macro base station (BS) backs a set of small base stations
// (SBS), each with a small content cache and a per-slot bandwidth budget.
// Every slot, a controller decides which contents each SBS caches (paying
// a replacement cost β per fetched item) and what fraction of each user
// class's requests the SBS serves (the BS serves the rest at quadratic
// operating cost). The library provides:
//
//   - the offline primal-dual solver of the paper's Algorithm 1, with a
//     certified dual lower bound (Offline);
//   - the paper's online controllers with limited noisy predictions —
//     RHC, CHC and AFHC with the Theorem-3 rounding policy;
//   - rule-based baselines (the paper's LRFU, plus LFU / EMA / static);
//   - workload synthesis (Zipf–Mandelbrot popularity, jitter, drift) and
//     a noisy prediction oracle;
//   - a simulation harness that verifies feasibility and accounts every
//     cost component.
//
// # Quick start
//
//	scn := edgecache.PaperScenario().WithHorizon(50).WithSeed(7)
//	inst, pred, err := scn.Build()
//	// handle err
//	runs, err := edgecache.Compare(context.Background(), inst, pred,
//		[]edgecache.Planner{
//			edgecache.Offline(),
//			edgecache.RHC(10),
//			edgecache.LRFU(),
//		})
//
// Every run entry point is context-first: cancelling the context aborts
// the underlying solves within one solver iteration, and WithSlotBudget
// bounds each solve's wall-clock time with graceful degradation instead
// of failure (see DESIGN.md §7 for the deadline semantics and the
// degradation ladder).
//
// See examples/ for complete programs and DESIGN.md for the mapping from
// the paper's equations to packages.
package edgecache

import (
	"context"
	"fmt"
	"io"
	"time"

	"edgecache/internal/audit"
	"edgecache/internal/baseline"
	"edgecache/internal/core"
	"edgecache/internal/fault"
	"edgecache/internal/model"
	"edgecache/internal/obs"
	"edgecache/internal/online"
	"edgecache/internal/sim"
	"edgecache/internal/trace"
	"edgecache/internal/workload"
)

// Re-exported core types. These aliases are the library's data surface;
// the heavy lifting stays in the internal packages.
type (
	// Instance is a fully specified problem (stations, users, demand).
	Instance = model.Instance
	// Demand holds per-slot request rates λ^t in the default dense
	// backing.
	Demand = model.Demand
	// DemandView is the storage-agnostic demand contract: dense (Demand)
	// or CSR-style sparse (SparseDemand) for web-scale catalogues.
	DemandView = model.DemandView
	// SparseDemand stores demand per (t, n) as sorted item lists — memory
	// scales with active entries, not the catalogue size.
	SparseDemand = model.SparseDemand
	// Trajectory is a sequence of per-slot (placement, load split) pairs.
	Trajectory = model.Trajectory
	// CachePlan is a per-slot cache placement x.
	CachePlan = model.CachePlan
	// LoadPlan is a per-slot load split y.
	LoadPlan = model.LoadPlan
	// CostBreakdown decomposes a trajectory's objective value.
	CostBreakdown = model.CostBreakdown
	// Predictor is the noisy limited-lookahead demand oracle.
	Predictor = workload.Predictor
	// Planner plans a trajectory for an instance (offline solver, online
	// controller, or baseline).
	Planner = sim.Policy
	// Run is one planner's evaluated result.
	Run = sim.Result
	// SlotMetrics are the per-slot series of a Run.
	SlotMetrics = sim.SlotMetrics
	// WorkloadStats summarises a demand tensor (volume, head mass, skew).
	WorkloadStats = workload.DemandStats
	// AuditReport is the differential auditor's verdict on a run (see
	// WithAudit): the violations found plus an independently recomputed
	// cost breakdown.
	AuditReport = audit.Report
	// AuditViolation is one failed auditor invariant.
	AuditViolation = audit.Violation
)

// Re-exported fault-injection types (see WithFaults). A FaultSchedule
// composes deterministic, seed-driven injectors; build one directly from
// these types or parse the compact spec DSL with ParseFaults.
type (
	// FaultSchedule is a deterministic set of failures to inject into a
	// run: SBS outages, bandwidth/capacity degradation, prediction
	// corruption and solver faults.
	FaultSchedule = fault.Schedule
	// FaultInjector is one failure clause of a FaultSchedule.
	FaultInjector = fault.Injector
	// SBSOutage takes one SBS (or all, SBS = -1) fully offline over
	// [From, To): zero bandwidth, zero cache capacity.
	SBSOutage = fault.Outage
	// BandwidthFault scales an SBS's effective bandwidth over a span —
	// backhaul congestion or partial radio failure.
	BandwidthFault = fault.BandwidthFactor
	// CapacityFault removes cache slots from an SBS over a span, forcing
	// eviction of the overflow.
	CapacityFault = fault.CapacityLoss
	// RandomOutagesFault samples geometric-length outages at a per-slot
	// rate, deterministically from the schedule seed.
	RandomOutagesFault = fault.RandomOutages
	// PredictionFault corrupts the predictor's output (spike, dropout or
	// stale-freeze) without touching the ground-truth demand.
	PredictionFault = fault.Corruption
	// SolverFault makes the window solve at one slot fail (or panic) for
	// a number of attempts, exercising the retry and degradation paths.
	SolverFault = fault.SolverFault
	// CorruptionMode selects how a PredictionFault distorts forecasts.
	CorruptionMode = fault.CorruptionMode
)

// Prediction-corruption modes for PredictionFault.
const (
	// CorruptSpike multiplies predicted rates by the fault's magnitude.
	CorruptSpike = fault.Spike
	// CorruptDropout zeroes predicted rates at the fault's rate.
	CorruptDropout = fault.Dropout
	// CorruptFreeze replaces forecasts with the demand at the fault's
	// first slot — a stale, never-updating predictor.
	CorruptFreeze = fault.Freeze
)

// ParseFaults parses the compact fault-spec DSL: semicolon-separated
// clauses of kind:key=value pairs, e.g.
//
//	outage:n=1,from=10,to=20; bw:n=-1,from=5,factor=0.25; corrupt:mode=spike,from=3,to=8,mag=5
//
// See the jocsim -faults flag documentation for the full grammar.
func ParseFaults(spec string) (*FaultSchedule, error) { return fault.Parse(spec) }

// LoadFaults reads a fault schedule from a JSON file (the format written
// by FaultSchedule's json tags); seed overrides the file's seed when
// non-zero. Pass a spec string instead of a path to parse it directly.
func LoadFaults(arg string, seed uint64) (*FaultSchedule, error) { return fault.FromSpec(arg, seed) }

// Re-exported observability types. Telemetry is observational only: it
// never changes solver behaviour, and the nil handle is a free no-op.
type (
	// Telemetry bundles a structured event sink with a metrics registry;
	// pass it to SimulateObserved / CompareObserved to record per-
	// iteration solver events, per-slot controller decisions and per-run
	// summaries. See DESIGN.md §6 for the event schema.
	Telemetry = obs.Telemetry
	// TelemetrySink consumes structured events; implement it to stream
	// telemetry into a custom backend. Implementations must be safe for
	// concurrent use.
	TelemetrySink = obs.Sink
	// TelemetryEvent is one structured record (timestamp, type, fields).
	TelemetryEvent = obs.Event
	// TelemetryFields is an event's type-specific payload.
	TelemetryFields = obs.Fields
	// Metrics is a registry of counters, gauges and timing histograms.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// ObservablePlanner is implemented by planners that accept a
	// telemetry handle (all planners in this package do).
	ObservablePlanner = sim.Observable
	// MetricsHistogram is a value histogram with bucketed quantiles.
	MetricsHistogram = obs.Histogram
	// Tracer records hierarchical spans (run → window solve → solver
	// phase); install it in a context with WithTracer and export with
	// WriteChromeTrace.
	Tracer = obs.Tracer
	// TraceSpan is one span handle; the nil span is a free no-op.
	TraceSpan = obs.Span
	// SpanRecord is one completed span as recorded by a Tracer.
	SpanRecord = obs.SpanRecord
	// FlightRecorder retains the most recent solver iterations and
	// operational events in fixed-size rings (see DefaultFlight).
	FlightRecorder = obs.FlightRecorder
	// FlightSnapshot is a point-in-time copy of a FlightRecorder.
	FlightSnapshot = obs.FlightSnapshot
	// DebugServer is the handle returned by ServeDebug; Close shuts the
	// endpoint down gracefully.
	DebugServer = obs.DebugServer
	// RunCurve bundles a run's convergence and regret curves (see
	// WithCurves).
	RunCurve = sim.Curve
	// GapPoint is one dual-gap observation of a RunCurve.
	GapPoint = sim.GapPoint
)

// NewTelemetry returns a telemetry handle emitting into sink and
// recording metrics into the process-wide default registry.
func NewTelemetry(sink TelemetrySink) *Telemetry { return obs.New(sink, nil) }

// NewJSONLSink returns a sink writing one JSON object per event to w —
// the format behind the binaries' -trace flag. Call Close to flush when
// w buffers.
func NewJSONLSink(w io.Writer) *obs.JSONLSink { return obs.NewJSONL(w) }

// NewTextSink returns a sink rendering events as single human-readable
// lines, optionally filtered to the given event types.
func NewTextSink(w io.Writer, types ...string) *obs.TextSink { return obs.NewText(w, types...) }

// TeeSinks duplicates events to several sinks.
func TeeSinks(sinks ...TelemetrySink) TelemetrySink { return obs.Tee(sinks...) }

// DefaultMetrics returns the process-wide metrics registry every solver
// layer reports into (always on; atomic counters).
func DefaultMetrics() *Metrics { return obs.Default }

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060")
// exposing /debug/vars (expvar, including DefaultMetrics),
// /debug/pprof/ for live profiling of long solves, /metrics in
// Prometheus text format, and /debug/solver (the flight recorder's
// JSON snapshot). It does not block; the handle's Addr reports the
// bound address and Close shuts the server down gracefully.
func ServeDebug(addr string) (*DebugServer, error) { return obs.ServeDebug(addr) }

// NewTracer returns a span tracer. Install it in the run context with
// WithTracer; spans are additionally mirrored into sink as "span"
// events when sink is non-nil. After the run, export the collected
// spans with the tracer's WriteChromeTrace (viewable in Perfetto or
// chrome://tracing) or read them via Records.
func NewTracer(sink TelemetrySink) *Tracer { return obs.NewTracer(sink) }

// WithTracer returns a context carrying the tracer; every solver layer
// below (simulation run, controller versions, window solves, dual
// iteration batches and phases) opens spans on it. A context without a
// tracer makes all span operations free no-ops.
func WithTracer(ctx context.Context, tr *Tracer) context.Context { return obs.WithTracer(ctx, tr) }

// DefaultFlight returns the process-wide solver flight recorder served
// at /debug/solver. It records nothing until installed as a telemetry
// sink, e.g. WithTelemetry(NewTelemetry(TeeSinks(DefaultFlight(), ...))).
func DefaultFlight() *FlightRecorder { return obs.Flight }

// DemandStatistics summarises a demand tensor: total and per-slot volume,
// head mass (how cacheable the catalogue is), Gini skew and temporal
// variability — the quantities to inspect before trusting a workload.
func DemandStatistics(d DemandView) WorkloadStats { return workload.Stats(d) }

// Scenario is a fluent builder for problem instances. The zero value is
// not useful; start from PaperScenario or NewScenario.
type Scenario struct {
	cfg       workload.InstanceConfig
	eta       float64
	transform func(t, n, m, k int, rate float64) float64
	demand    *Demand
	sparse    bool
	topK      int
}

// PaperScenario returns the paper's §V-B simulation setup: one SBS with a
// 5-item cache and bandwidth 30, a 30-item catalogue, 30 user classes,
// 100 slots, β = 100, Zipf–Mandelbrot(0.8, 30) popularity, prediction
// noise η = 0.1.
func PaperScenario() *Scenario {
	return &Scenario{cfg: workload.PaperDefault(), eta: 0.1}
}

// NewScenario returns a scenario with the paper's defaults but the given
// principal dimensions.
func NewScenario(sbs, catalogue, classes, horizon int) *Scenario {
	s := PaperScenario()
	s.cfg.N = sbs
	s.cfg.K = catalogue
	s.cfg.ClassesPerSBS = classes
	s.cfg.T = horizon
	return s
}

// WithHorizon sets the number of slots T.
func (s *Scenario) WithHorizon(t int) *Scenario { s.cfg.T = t; return s }

// WithCatalogue sets the content count K.
func (s *Scenario) WithCatalogue(k int) *Scenario { s.cfg.K = k; return s }

// WithCache sets every SBS's cache capacity C.
func (s *Scenario) WithCache(c int) *Scenario { s.cfg.CacheCap = c; return s }

// WithBandwidth sets every SBS's per-slot bandwidth B.
func (s *Scenario) WithBandwidth(b float64) *Scenario { s.cfg.Bandwidth = b; return s }

// WithBeta sets the cache replacement cost β.
func (s *Scenario) WithBeta(b float64) *Scenario { s.cfg.Beta = b; return s }

// WithJitter sets the slot-to-slot demand variation σ ∈ [0, 1).
func (s *Scenario) WithJitter(j float64) *Scenario { s.cfg.Workload.Jitter = j; return s }

// WithDrift makes content popularity ranks rotate one position every
// period slots (0 disables).
func (s *Scenario) WithDrift(period int) *Scenario { s.cfg.Workload.DriftPeriod = period; return s }

// WithDiurnal modulates total demand sinusoidally: amplitude ∈ [0, 1)
// over the given period in slots — the day/night cycle.
func (s *Scenario) WithDiurnal(amplitude float64, period int) *Scenario {
	s.cfg.Workload.DiurnalAmplitude = amplitude
	s.cfg.Workload.DiurnalPeriod = period
	return s
}

// WithZipf sets the popularity skew α and shift q.
func (s *Scenario) WithZipf(alpha, q float64) *Scenario {
	s.cfg.Workload.Zipf.Alpha = alpha
	s.cfg.Workload.Zipf.Q = q
	return s
}

// WithDensity sets the per-class demand density cap (d_m ~ U[0, max]).
func (s *Scenario) WithDensity(maxDensity float64) *Scenario {
	s.cfg.Workload.MaxDensity = maxDensity
	return s
}

// WithSBSWeightRatio sets ŵ = ratio·ω (0 = SBS operating cost ignored).
func (s *Scenario) WithSBSWeightRatio(ratio float64) *Scenario {
	s.cfg.OmegaSBSRatio = ratio
	return s
}

// WithNoise sets the prediction noise level η ∈ [0, 1).
func (s *Scenario) WithNoise(eta float64) *Scenario { s.eta = eta; return s }

// WithSeed makes the scenario deterministic under the given seed.
func (s *Scenario) WithSeed(seed uint64) *Scenario { s.cfg.Seed = seed; return s }

// WithDemandTransform post-processes every generated rate λ^t_{m,k}
// through f — the hook for event-driven workloads (flash crowds, outages)
// that the synthetic generator cannot express. f must return a finite,
// non-negative rate.
func (s *Scenario) WithDemandTransform(f func(t, n, m, k int, rate float64) float64) *Scenario {
	s.transform = f
	return s
}

// WithDemand replaces the synthetic workload with an externally supplied
// demand tensor (e.g. loaded from production logs via ReadDemandCSV). The
// tensor's shape must match the scenario's dimensions at Build time.
func (s *Scenario) WithDemand(d *Demand) *Scenario { s.demand = d; return s }

// WithSparse switches the generated workload to the sparse demand
// representation, truncated to the topK most popular contents per
// (slot, SBS). Memory then scales with T·N·M·topK instead of T·N·M·K,
// which is what makes web-scale catalogues (K ~ 10⁶) buildable at all;
// pair it with SolveSharded so the solver side scales the same way.
// topK ≥ K (or ≤ 0) keeps the full catalogue but still stores it
// sparsely.
func (s *Scenario) WithSparse(topK int) *Scenario {
	s.sparse = true
	s.topK = topK
	return s
}

// Build materialises the instance and its prediction oracle.
func (s *Scenario) Build() (*Instance, *Predictor, error) {
	var genOpts []workload.Option
	if s.sparse {
		genOpts = append(genOpts, workload.WithSparse(s.topK))
	}
	in, err := workload.BuildInstanceWith(s.cfg, genOpts...)
	if err != nil {
		return nil, nil, fmt.Errorf("edgecache: %w", err)
	}
	if s.demand != nil {
		in.Demand = s.demand
		if err := in.Validate(); err != nil {
			return nil, nil, fmt.Errorf("edgecache: external demand: %w", err)
		}
	}
	if s.transform != nil {
		in.Demand.Map(s.transform)
	}
	pred, err := workload.NewPredictor(in.Demand, s.eta, s.cfg.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("edgecache: %w", err)
	}
	return in, pred, nil
}

// SolverOption tunes the offline primal-dual solver returned by Offline.
type SolverOption func(*core.Options)

// MaxIterations caps the dual-ascent iteration budget L (default 60).
func MaxIterations(n int) SolverOption { return func(o *core.Options) { o.MaxIter = n } }

// Tolerance sets the relative duality-gap stopping tolerance ε
// (paper: 1e-4).
func Tolerance(eps float64) SolverOption { return func(o *core.Options) { o.Epsilon = eps } }

// StepAlpha sets α in the diminishing dual step δ_l = 1/(1+αl)
// (default 0.05); smaller values take larger steps for longer.
func StepAlpha(a float64) SolverOption { return func(o *core.Options) { o.StepAlpha = a } }

// WarmStart warm-starts the dual multipliers μ (shape [T][N][M_n·K]);
// nil starts from zero. Passing the (shifted) multipliers of a previous
// solve of a nearby instance typically cuts the iteration count
// several-fold.
func WarmStart(mu [][][]float64) SolverOption {
	return func(o *core.Options) { o.InitialMu = mu }
}

// Offline returns the paper's offline primal-dual solver (Algorithm 1) as
// a planner: the full-information reference every online algorithm is
// measured against. With no options it uses the paper's defaults; pass
// MaxIterations, Tolerance, StepAlpha or WarmStart to tune it.
func Offline(opts ...SolverOption) Planner {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return sim.Offline(o)
}

type (
	// ShardedResult is the aggregate outcome of SolveSharded.
	ShardedResult = core.ShardedResult
	// ShardSolution is one SBS's shard of a ShardedResult, with its
	// trajectory stored sparsely (cached items and their load splits).
	ShardSolution = core.ShardSolution
)

// SolveSharded runs the offline solver (Algorithm 1) one SBS shard at a
// time over a bounded worker pool: each SBS becomes an independent
// compact sub-instance over its own candidate set — the contents it ever
// sees demand for plus its initial cache — so solver memory scales with
// demand rather than with N·K. The result keeps per-shard trajectories in
// sparse form; call ShardedResult.Densify for a dense trajectory when the
// instance is small enough to afford one. This is the entry point for
// web-scale instances built with Scenario.WithSparse; WarmStart is not
// supported here (global multiplier planes do not map onto shards).
func SolveSharded(ctx context.Context, in *Instance, opts ...SolverOption) (*ShardedResult, error) {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return core.SolveSharded(ctx, in, o)
}

// PeakRSS returns the process's peak resident set size in bytes, and
// whether the exact kernel figure (Linux VmHWM) was available — the
// memory yardstick of the web-scale demos. The fallback is the Go
// runtime's own high-water mark, which ignores non-runtime allocations.
func PeakRSS() (uint64, bool) { return obs.PeakRSSBytes() }

// RHC returns Receding Horizon Control with prediction window w
// (Algorithm 2; commits one slot per solve).
func RHC(w int) Planner { return sim.Online(online.RHC(w)) }

// CHC returns Committed Horizon Control with window w and commitment
// level r (Algorithm 3; averages r staggered solvers and rounds at
// ρ = (3−√5)/2 per Theorem 3).
func CHC(w, r int) Planner { return sim.Online(online.CHC(w, r)) }

// AFHC returns Averaging Fixed Horizon Control (CHC with r = w).
func AFHC(w int) Planner { return sim.Online(online.AFHC(w)) }

// FHC returns plain Fixed Horizon Control: re-solve every w slots and
// commit the whole window, with no staggered averaging — the classic
// baseline AFHC improves on.
func FHC(w int) Planner { return sim.Online(online.FHC(w)) }

// LRFU returns the paper's §V-A baseline: cache the top-C contents by the
// current slot's aggregate request volume.
func LRFU() Planner { return sim.FromBaseline(baseline.NewLRFU()) }

// LFU returns the cumulative-frequency baseline.
func LFU() Planner { return sim.FromBaseline(baseline.NewLFU()) }

// EMACache returns the exponentially smoothed recency/frequency baseline
// with the given decay ∈ [0, 1].
func EMACache(decay float64) Planner { return sim.FromBaseline(baseline.NewEMA(decay)) }

// StaticTop returns the never-replace baseline (top-C by horizon-average
// demand).
func StaticTop() Planner { return sim.FromBaseline(&baseline.StaticTop{}) }

// NoCaching returns the null policy that serves everything from the BS.
func NoCaching() Planner { return sim.FromBaseline(baseline.NoCaching{}) }

// ClassicLRU evaluates a request-driven least-recently-used cache under
// the paper's cost model: a Poisson request trace is sampled from the
// instance demand (deterministically from seed) and streamed through the
// cache; the resulting placements are costed like any other policy.
func ClassicLRU(seed uint64) Planner {
	return sim.FromBaseline(trace.NewPolicyAdapter(trace.NewLRU(), seed))
}

// ClassicFIFO evaluates a request-driven FIFO cache (see ClassicLRU).
func ClassicFIFO(seed uint64) Planner {
	return sim.FromBaseline(trace.NewPolicyAdapter(trace.NewFIFO(), seed))
}

// ClassicLFU evaluates a request-driven perfect-LFU cache (see ClassicLRU).
func ClassicLFU(seed uint64) Planner {
	return sim.FromBaseline(trace.NewPolicyAdapter(trace.NewLFU(), seed))
}

// ClassicLRFU evaluates the original LRFU of Lee et al. with decay λ (see
// ClassicLRU). λ → 0 approaches LFU, large λ approaches LRU.
func ClassicLRFU(lambda float64, seed uint64) Planner {
	return sim.FromBaseline(trace.NewPolicyAdapter(trace.NewClassicLRFU(lambda), seed))
}

// ReadDemandCSV loads a long-format demand CSV (header
// t,sbs,class,content,rate) into a tensor of the given shape — the entry
// point for evaluating the library on real request-rate logs; pair it
// with Scenario.WithDemand.
func ReadDemandCSV(r io.Reader, t int, classes []int, k int) (*Demand, error) {
	return workload.ReadDemandCSV(r, t, classes, k)
}

// WriteDemandCSV serialises a demand tensor in the format ReadDemandCSV
// consumes.
func WriteDemandCSV(w io.Writer, d DemandView) error {
	return workload.WriteDemandCSV(w, d)
}

// RunOption configures a Simulate or Compare call. Options are
// orthogonal and composable; zero options reproduce the plain
// feasibility-checked simulation.
type RunOption func(*sim.Config)

// WithTelemetry threads a telemetry handle into the planners' solvers,
// recording per-iteration solver events, per-slot controller decisions
// and per-run summaries. A nil handle is a free no-op.
func WithTelemetry(tel *Telemetry) RunOption {
	return func(c *sim.Config) { c.Telemetry = tel }
}

// WithSlotBudget bounds each solve's wall-clock time to d. A solver that
// overruns its budget degrades gracefully instead of failing: it commits
// its best feasible iterate when the duality gap is finite, and otherwise
// falls back to a rule-based plan (LRFU placement with the reactive
// optimal load split, or the planner given to WithFallback). Degraded
// solves emit a solve_degraded telemetry event and bump the
// solver.degraded counter. See DESIGN.md §7.
func WithSlotBudget(d time.Duration) RunOption {
	return func(c *sim.Config) { c.SlotBudget = d }
}

// WithFallback replaces the default LRFU fallback used when a budgeted
// solve overruns with no usable iterate. The planner is invoked on the
// window's instance with no predictor; it must be cheap and must not
// itself require a solver (a baseline such as LRFU, LFU or StaticTop).
func WithFallback(p Planner) RunOption {
	return func(c *sim.Config) {
		c.Fallback = func(ctx context.Context, win *model.Instance) (model.Trajectory, error) {
			return p.Plan(ctx, win, nil)
		}
	}
}

// WithFaults injects a deterministic fault schedule into the run: SBS
// outages and degradations become the instance's effective per-slot
// constraints, prediction corruption is hooked into the predictor, and
// the online controllers arm solver faults, event-driven replans and
// retry-with-backoff. The base instance is never mutated; a nil or
// empty schedule reproduces the failure-free run exactly. Under
// outages the committed trajectory stays feasible against the
// *effective* instance, but the paper's Theorem 3 competitive bound no
// longer applies (DESIGN.md §10).
func WithFaults(s *FaultSchedule) RunOption {
	return func(c *sim.Config) { c.Faults = s }
}

// WithCurves captures each run's convergence and regret curves into
// Run.Curve: the solver's dual-gap trajectory (LB/UB/gap per dual
// iteration), the committed cumulative cost per slot, and — for online
// controllers — the relaxed pre-rounding objective anchoring the
// Theorem 3 comparison. Observational: it taps the telemetry stream
// without changing solver behaviour.
func WithCurves() RunOption {
	return func(c *sim.Config) { c.Curves = true }
}

// WithAudit re-derives everything each committed run claims (the
// differential auditor, DESIGN.md §9): every slot's constraints, the
// integrality of committed placements and an independent recomputation
// of the cost breakdown. The report lands in Run.Audit; violations are
// additionally published as audit_violation telemetry events and the
// audit.violations counter. The audit is observational — a violating
// run still returns its result — and costs well under 5% of a solve.
func WithAudit() RunOption {
	return func(c *sim.Config) { c.Audit = true }
}

// Simulate plans with one planner, verifies feasibility and accounts all
// cost components. Cancelling ctx aborts the underlying solves within
// one solver iteration; the returned error then wraps ctx.Err().
func Simulate(ctx context.Context, in *Instance, pred *Predictor, p Planner, opts ...RunOption) (*Run, error) {
	var cfg sim.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return sim.RunWith(ctx, in, pred, p, cfg)
}

// Compare runs several planners on the same instance and predictions,
// returning results in argument order. Options apply to every planner.
// Cancelling ctx aborts the in-flight solve within one iteration and
// skips the remaining planners.
func Compare(ctx context.Context, in *Instance, pred *Predictor, planners []Planner, opts ...RunOption) ([]*Run, error) {
	runs := make([]*Run, len(planners))
	for i, p := range planners {
		r, err := Simulate(ctx, in, pred, p, opts...)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	return runs, nil
}

// SimulateObserved is Simulate with a telemetry handle.
//
// Deprecated: use Simulate(ctx, in, pred, p, WithTelemetry(tel)).
func SimulateObserved(in *Instance, pred *Predictor, p Planner, tel *Telemetry) (*Run, error) {
	return Simulate(context.Background(), in, pred, p, WithTelemetry(tel))
}

// CompareObserved is Compare with a telemetry handle.
//
// Deprecated: use Compare(ctx, in, pred, planners, WithTelemetry(tel)).
func CompareObserved(in *Instance, pred *Predictor, tel *Telemetry, planners ...Planner) ([]*Run, error) {
	return Compare(context.Background(), in, pred, planners, WithTelemetry(tel))
}
