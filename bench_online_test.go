// Online-controller benchmarks: the three horizon controllers end to end,
// and the warm-window solve sequence that isolates the cross-window
// incremental machinery (coefficient rotation, iterate carry, dirty-row
// scheduling — DESIGN.md §12).
package edgecache_test

import (
	"context"
	"testing"

	"edgecache/internal/core"
	"edgecache/internal/model"
	"edgecache/internal/online"
)

func BenchmarkOnline_Controllers(b *testing.B) {
	in, pred := benchInstance(b)
	for _, cfg := range []online.Config{online.RHC(4), online.CHC(4, 2), online.AFHC(4)} {
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := online.Run(context.Background(), in, pred, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// warmWindows builds the sliding-window sequence a receding-horizon
// controller solves: overlapping w-slot views of one instance, each
// shifted by one slot. The windows share the instance's demand backing,
// so consecutive windows agree bitwise on their overlap — the condition
// under which the cross-window coefficient rotation engages.
func warmWindows(b *testing.B) []*model.Instance {
	b.Helper()
	in, _ := benchInstance(b)
	const w = 6
	plan := in.InitialPlan()
	var wins []*model.Instance
	for from := 0; from+w <= in.T; from++ {
		sub, err := in.Window(from, from+w, plan, nil)
		if err != nil {
			b.Fatal(err)
		}
		wins = append(wins, sub)
	}
	return wins
}

// shiftWarmMu re-aligns the previous window's multipliers one slot left
// (the online controller's μ warm start for advance = 1): overlapping
// slots keep their values, the new tail slot starts at zero.
func shiftWarmMu(dst, mu [][][]float64, in *model.Instance) [][][]float64 {
	w := len(mu)
	if dst == nil {
		dst = make([][][]float64, w)
		for t := range dst {
			dst[t] = make([][]float64, in.N)
			for n := range dst[t] {
				dst[t][n] = make([]float64, in.Classes[n]*in.K)
			}
		}
	}
	for t := 0; t < w; t++ {
		for n := range dst[t] {
			if t+1 < w {
				copy(dst[t][n], mu[t+1][n])
			} else {
				clear(dst[t][n])
			}
		}
	}
	return dst
}

// benchWarmWindow solves the full sliding-window sequence once per
// iteration with a single shared solver workspace. The cold variant is
// the from-scratch controller step: every window starts with zero
// multipliers, a full rebind and the delta machinery ablated
// (core.Options.DisableIncremental). The incremental variant is the
// warm-window steady state this PR builds: the previous window's μ is
// shifted onto the overlap (the pre-existing warm start), Advance = 1
// rotates per-(t, n) subproblem coefficients and carries the load
// iterates across windows, and the dirty-(t, n) scheduling re-solves
// only what the shift and the dual steps actually moved. Per-window
// solutions stay bit-exact under the delta machinery
// (TestSolveAdvanceIncrementalMatchesDisabled); warm starts trade
// iterations, not correctness.
func benchWarmWindow(b *testing.B, cold bool) {
	wins := warmWindows(b)
	ws := core.NewWorkspace()
	opts := core.Options{MaxIter: 15, StallIter: 6, Workspace: ws, DisableIncremental: cold}
	var warm [][][]float64
	run := func() {
		for i, sub := range wins {
			o := opts
			if !cold && i > 0 {
				o.Advance = 1
				o.InitialMu = warm
			}
			res, err := core.Solve(context.Background(), sub, o)
			if err != nil {
				b.Fatal(err)
			}
			if !cold {
				warm = shiftWarmMu(warm, res.Mu, sub)
			}
		}
	}
	run() // populate the workspace so both variants measure the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkWarmWindowSolve_Cold(b *testing.B)        { benchWarmWindow(b, true) }
func BenchmarkWarmWindowSolve_Incremental(b *testing.B) { benchWarmWindow(b, false) }
