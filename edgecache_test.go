package edgecache

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func smallScenario() *Scenario {
	return PaperScenario().
		WithHorizon(8).
		WithCatalogue(6).
		WithCache(2).
		WithBandwidth(6).
		WithBeta(5).
		WithSeed(3)
}

func TestScenarioBuild(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.T != 8 || in.K != 6 || in.CacheCap[0] != 2 {
		t.Fatalf("scenario dims not applied: T=%d K=%d C=%d", in.T, in.K, in.CacheCap[0])
	}
	if pred.Eta() != 0.1 {
		t.Fatalf("eta = %g, want paper default 0.1", pred.Eta())
	}
}

func TestScenarioBuilderChaining(t *testing.T) {
	in, pred, err := NewScenario(2, 5, 3, 4).
		WithJitter(0.2).
		WithDrift(2).
		WithZipf(1.0, 5).
		WithDensity(2).
		WithSBSWeightRatio(0.01).
		WithNoise(0.3).
		WithSeed(11).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.N != 2 || in.K != 5 || in.Classes[0] != 3 || in.T != 4 {
		t.Fatal("principal dimensions not applied")
	}
	if in.OmegaSBS[0][0] != 0.01*in.OmegaBS[0][0] {
		t.Fatal("SBS weight ratio not applied")
	}
	if pred.Eta() != 0.3 {
		t.Fatal("noise not applied")
	}
}

func TestScenarioBuildRejectsInvalid(t *testing.T) {
	if _, _, err := PaperScenario().WithHorizon(0).Build(); err == nil {
		t.Fatal("accepted zero horizon")
	}
	if _, _, err := PaperScenario().WithNoise(1.5).Build(); err == nil {
		t.Fatal("accepted noise ≥ 1")
	}
}

func TestSimulateAndCompare(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := Compare(context.Background(), in, pred, []Planner{
		Offline(),
		RHC(4),
		CHC(4, 2),
		AFHC(4),
		LRFU(),
		LFU(),
		EMACache(0.5),
		StaticTop(),
		NoCaching(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 9 {
		t.Fatalf("got %d runs", len(runs))
	}
	byName := map[string]*Run{}
	for _, r := range runs {
		byName[r.Policy] = r
	}
	if byName["Offline"] == nil || byName["LRFU"] == nil || byName["NoCaching"] == nil {
		t.Fatalf("missing expected policies: %v", names(runs))
	}
	null := byName["NoCaching"].Cost.Total
	for _, r := range runs {
		if r.Cost.Total > null*1.001 {
			t.Errorf("%s cost %g exceeds no-caching %g", r.Policy, r.Cost.Total, null)
		}
	}
	// Offline dominates everything (same objective, full information).
	off := byName["Offline"].Cost.Total
	for _, r := range runs {
		if off > r.Cost.Total*1.02+1e-9 {
			t.Errorf("offline %g worse than %s %g", off, r.Policy, r.Cost.Total)
		}
	}
}

func names(runs []*Run) []string {
	out := make([]string, len(runs))
	for i, r := range runs {
		out[i] = r.Policy
	}
	return out
}

func TestWithExternalDemand(t *testing.T) {
	// Export a scenario's demand, reload it, and rebuild on it.
	in, _, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDemandCSV(&buf, in.Demand); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDemandCSV(&buf, in.T, in.Classes, in.K)
	if err != nil {
		t.Fatal(err)
	}
	in2, _, err := smallScenario().WithDemand(d).Build()
	if err != nil {
		t.Fatal(err)
	}
	if in2.Demand.At(2, 0, 1, 3) != in.Demand.At(2, 0, 1, 3) {
		t.Fatal("external demand not used")
	}
	// Shape mismatch must be rejected.
	if _, _, err := smallScenario().WithHorizon(3).WithDemand(d).Build(); err == nil {
		t.Fatal("accepted mismatched external demand")
	}
}

func TestClassicPlanners(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	runs, err := Compare(context.Background(), in, pred, []Planner{
		ClassicLRU(1),
		ClassicFIFO(1),
		ClassicLFU(1),
		ClassicLRFU(0.1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"LRU", "FIFO", "LFU", "LRFU(λ=0.1)"}
	for i, r := range runs {
		if r.Policy != wantNames[i] {
			t.Errorf("run %d named %q, want %q", i, r.Policy, wantNames[i])
		}
		if r.Cost.Total <= 0 {
			t.Errorf("%s: non-positive cost", r.Policy)
		}
	}
}

func TestSimulateSinglePlanner(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(context.Background(), in, pred, RHC(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.PerSlot) != in.T {
		t.Fatalf("per-slot series has %d entries", len(run.PerSlot))
	}
	if len(run.Trajectory) != in.T {
		t.Fatalf("trajectory has %d slots", len(run.Trajectory))
	}
	recomputed := in.TotalCost(run.Trajectory)
	if math.Abs(recomputed.Total-run.Cost.Total) > 1e-9 {
		t.Fatalf("reported cost %g does not match trajectory %g", run.Cost.Total, recomputed.Total)
	}
}

// memSink collects events for assertions; safe for concurrent emitters.
type memSink struct {
	mu     sync.Mutex
	events []TelemetryEvent
}

func (s *memSink) Emit(e TelemetryEvent) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *memSink) count(typ string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func TestCancelledCompareReturnsContextError(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compare(ctx, in, pred, []Planner{Offline(), RHC(3)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if _, err := Simulate(ctx, in, pred, LRFU()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestSlotBudgetDegradesButStaysFeasible is the headline acceptance
// check: an impossibly small per-slot budget must not fail the run — the
// controller degrades window by window, the committed trajectory stays
// feasible (the harness re-verifies it), and telemetry announces every
// degradation.
func TestSlotBudgetDegradesButStaysFeasible(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	for _, p := range []Planner{RHC(3), Offline()} {
		run, err := Simulate(context.Background(), in, pred, p,
			WithTelemetry(NewTelemetry(sink)), WithSlotBudget(time.Nanosecond))
		if err != nil {
			t.Fatalf("%T: budgeted run failed instead of degrading: %v", p, err)
		}
		recomputed := in.TotalCost(run.Trajectory)
		if math.Abs(recomputed.Total-run.Cost.Total) > 1e-9 {
			t.Fatalf("degraded run cost %g does not match its trajectory %g", run.Cost.Total, recomputed.Total)
		}
	}
	if sink.count("solve_degraded") == 0 {
		t.Fatal("no solve_degraded events under a 1ns budget")
	}
}

func TestWithFallbackPlannerIsUsed(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := Simulate(context.Background(), in, pred, Offline(),
		WithSlotBudget(time.Nanosecond), WithFallback(NoCaching()))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < in.T; slot++ {
		for k := 0; k < in.K; k++ {
			if run.Trajectory[slot].X[0][k] != 0 {
				t.Fatalf("slot %d caches content %d; NoCaching fallback was not committed", slot, k)
			}
		}
	}
}

func TestOfflineSolverOptions(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Simulate(context.Background(), in, pred,
		Offline(MaxIterations(2), Tolerance(1e-2), StepAlpha(0.2)))
	if err != nil {
		t.Fatal(err)
	}
	deflt, err := Simulate(context.Background(), in, pred, Offline())
	if err != nil {
		t.Fatal(err)
	}
	// Two dual iterations cannot beat the fully converged solve; both
	// must still be feasible (verified by the harness) and costed.
	if tuned.Cost.Total < deflt.Cost.Total-1e-9 {
		t.Fatalf("2-iteration solve %g beat the converged solve %g", tuned.Cost.Total, deflt.Cost.Total)
	}
}

// TestDeprecatedWrappersStillWork pins the compatibility contract: the
// pre-context entry points keep their exact signatures and behaviour.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	in, pred, err := smallScenario().Build()
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	run, err := SimulateObserved(in, pred, LRFU(), NewTelemetry(sink))
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "LRFU" {
		t.Fatalf("policy = %q", run.Policy)
	}
	runs, err := CompareObserved(in, pred, nil, LRFU(), NoCaching())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs", len(runs))
	}
	if sink.count("run_summary") == 0 {
		t.Fatal("deprecated wrapper dropped telemetry")
	}
}
