module edgecache

go 1.24
